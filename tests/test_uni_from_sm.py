"""Tests for §3.2 over every shared-memory primitive (SWMR/PEATS/sticky)."""

from __future__ import annotations

import pytest

from repro.core.directionality import check_directionality
from repro.core.rounds import RoundProcess
from repro.core.uni_from_sm import (
    ALL_SM_TRANSPORTS,
    PEATSRoundTransport,
    StickyChainRoundTransport,
    SWMRRoundTransport,
    build_objects_for,
)
from repro.errors import ConfigurationError
from repro.sim import ReliableAsynchronous, Simulation

TRANSPORT_NAMES = sorted(ALL_SM_TRANSPORTS)


class Chat(RoundProcess):
    def __init__(self, transport, nrounds=2):
        super().__init__(transport)
        self.nrounds = nrounds

    def on_round_start(self):
        self.rounds.begin_round(("m", self.pid, 1), label=("r", 1))

    def on_round_complete(self, label):
        r = label[1]
        if r < self.nrounds:
            self.rounds.begin_round(("m", self.pid, r + 1), label=("r", r + 1))


def run(name, n=4, seed=0, nrounds=2, min_d=0.01, max_d=1.5, until=300.0):
    cls = ALL_SM_TRANSPORTS[name]
    procs = [Chat(cls(), nrounds) for _ in range(n)]
    sim = Simulation(procs, ReliableAsynchronous(min_d, max_d), seed=seed)
    for obj in build_objects_for(name, n):
        sim.memory.register(obj)
    sim.run(until=until)
    return sim, procs


class TestUnidirectionality:
    @pytest.mark.parametrize("name", TRANSPORT_NAMES)
    def test_transport_is_unidirectional(self, name):
        sim, procs = run(name, seed=1)
        rep = check_directionality(sim.trace, range(4))
        assert rep.is_unidirectional
        assert rep.pairs_checked > 0
        assert len(sim.trace.events("round_end")) == 4 * 2

    @pytest.mark.parametrize("name", TRANSPORT_NAMES)
    @pytest.mark.parametrize("seed", [3, 4])
    def test_adversarial_op_interleavings(self, name, seed):
        """Wide delay ranges produce wild interleavings; the guarantee must hold."""
        sim, procs = run(name, seed=seed, min_d=0.0, max_d=5.0, until=600.0)
        rep = check_directionality(sim.trace, range(4))
        rep.assert_unidirectional()

    @pytest.mark.parametrize("name", TRANSPORT_NAMES)
    def test_crashed_process_excluded(self, name):
        cls = ALL_SM_TRANSPORTS[name]
        procs = [Chat(cls(), 1) for _ in range(4)]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 1.0), seed=5)
        for obj in build_objects_for(name, 4):
            sim.memory.register(obj)
        sim.crash_at(3, 0.2)
        sim.run(until=300.0)
        rep = check_directionality(sim.trace, [0, 1, 2])
        assert rep.is_unidirectional
        # the survivors still finish their rounds (reads don't block on 3)
        ends = {e.pid for e in sim.trace.events("round_end")}
        assert {0, 1, 2} <= ends


class TestObjectSpecifics:
    def test_swmr_register_carries_history(self):
        sim, procs = run("swmr", nrounds=3, seed=6)
        reg0 = sim.memory.get("swmr0")
        history = reg0.execute(1, "read", ())
        assert len(history) == 3  # all three round entries retained

    def test_peats_single_space(self):
        objs = build_objects_for("peats", 5)
        assert len(objs) == 1

    def test_peats_policy_blocks_spoofing(self):
        from repro.errors import AccessDeniedError

        objs = build_objects_for("peats", 2)
        space = objs[0]
        with pytest.raises(AccessDeniedError):
            space.execute(0, "out", ((1, 1, ("r", 1), "spoof"),))

    def test_sticky_capacity_enforced(self):
        t = StickyChainRoundTransport(capacity=1)
        procs = [Chat(t, 1), Chat(StickyChainRoundTransport(capacity=1), 1)]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.2), seed=7)
        for obj in StickyChainRoundTransport.build_objects(2, capacity=1):
            sim.memory.register(obj)
        sim.run(until=100.0)
        with pytest.raises(ConfigurationError, match="capacity"):
            procs[0].rounds.post("overflow")

    def test_sticky_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            StickyChainRoundTransport(capacity=0)

    def test_unknown_transport_name(self):
        with pytest.raises(ConfigurationError):
            build_objects_for("nope", 3)


class TestAlgorithmOneOverOtherObjects:
    """Composition: Algorithm 1 (SRB) runs unchanged over the SWMR and PEATS
    transports — the paper's 'all shared memory objects' claim, end to end."""

    @pytest.mark.parametrize("name", ["swmr", "peats"])
    def test_srb_over_variant(self, name):
        from repro.core.srb import check_srb
        from repro.core.srb_from_uni import SRBFromUnidirectional
        from repro.crypto import SignatureScheme

        n, t = 3, 1
        cls = ALL_SM_TRANSPORTS[name]
        scheme = SignatureScheme(n, seed=8)
        procs = [
            SRBFromUnidirectional(cls(), 0, t, scheme, scheme.signer(p))
            for p in range(n)
        ]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.5), seed=8)
        for obj in build_objects_for(name, n):
            sim.memory.register(obj)
        sim.at(0.5, lambda: procs[0].broadcast("portable"))
        sim.run(until=500.0)
        rep = check_srb(sim.trace, 0, range(n))
        rep.assert_ok()
        assert len(rep.deliveries) == n
