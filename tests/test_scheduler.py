"""Tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import Callback
from repro.sim.scheduler import Scheduler


def make_scheduler(log):
    s = Scheduler()
    s.dispatch = lambda ev: log.append((ev.time, ev.payload.label))
    return s


class TestOrdering:
    def test_time_order(self):
        log = []
        s = make_scheduler(log)
        s.schedule(2.0, Callback(fn=lambda: None, label="b"))
        s.schedule(1.0, Callback(fn=lambda: None, label="a"))
        s.run()
        assert [l for _, l in log] == ["a", "b"]

    def test_fifo_tiebreak_at_same_time(self):
        log = []
        s = make_scheduler(log)
        for i in range(5):
            s.schedule(1.0, Callback(fn=lambda: None, label=f"e{i}"))
        s.run()
        assert [l for _, l in log] == [f"e{i}" for i in range(5)]

    def test_clock_advances_to_event_times(self):
        s = Scheduler()
        times = []
        s.dispatch = lambda ev: times.append(s.now)
        s.schedule(3.5, Callback(fn=lambda: None))
        s.schedule(1.25, Callback(fn=lambda: None))
        s.run()
        assert times == [1.25, 3.5]

    def test_schedule_at_absolute(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        s.schedule_at(10.0, Callback(fn=lambda: None))
        stats = s.run()
        assert stats.end_time == 10.0


class TestLimits:
    def test_until_leaves_future_events(self):
        log = []
        s = make_scheduler(log)
        s.schedule(1.0, Callback(fn=lambda: None, label="early"))
        s.schedule(5.0, Callback(fn=lambda: None, label="late"))
        stats = s.run(until=2.0)
        assert [l for _, l in log] == ["early"]
        assert not stats.exhausted
        assert s.pending == 1
        s.run()
        assert [l for _, l in log] == ["early", "late"]

    def test_until_advances_clock_when_quiescent(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        stats = s.run(until=42.0)
        assert stats.exhausted and s.now == 42.0

    def test_max_events(self):
        log = []
        s = make_scheduler(log)
        for i in range(10):
            s.schedule(float(i), Callback(fn=lambda: None, label=str(i)))
        stats = s.run(max_events=3)
        assert stats.events_processed == 3
        assert len(log) == 3


class TestCancellation:
    def test_cancelled_event_skipped(self):
        log = []
        s = make_scheduler(log)
        ev = s.schedule(1.0, Callback(fn=lambda: None, label="cancel-me"))
        s.schedule(2.0, Callback(fn=lambda: None, label="keep"))
        s.cancel(ev)
        s.run()
        assert [l for _, l in log] == ["keep"]

    def test_pending_ignores_cancelled(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        ev = s.schedule(1.0, Callback(fn=lambda: None))
        assert s.pending == 1
        s.cancel(ev)
        assert s.pending == 0

    def test_double_cancel_counts_once(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        ev = s.schedule(1.0, Callback(fn=lambda: None))
        s.schedule(2.0, Callback(fn=lambda: None))
        s.cancel(ev)
        s.cancel(ev)
        assert s.pending == 1

    def test_pending_tracks_dispatch_and_cancel_through_run(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        evs = [s.schedule(float(i + 1), Callback(fn=lambda: None)) for i in range(5)]
        assert s.pending == 5
        s.cancel(evs[3])
        assert s.pending == 4
        s.run(until=2.0)  # dispatches t=1 and t=2
        assert s.pending == 2
        s.run()
        assert s.pending == 0

    def test_cancel_after_fire_is_inert(self):
        # cancelling an already-dispatched event must not decrement the
        # live counter again or count a tombstone that is not in the heap
        log = []
        s = make_scheduler(log)
        fired = [
            s.schedule(float(i), Callback(fn=lambda: None, label=f"e{i}"))
            for i in range(5)
        ]
        s.schedule(10.0, Callback(fn=lambda: None, label="live"))
        s.run(until=6.0)
        assert s.pending == 1
        for ev in fired:
            s.cancel(ev)
            s.cancel(ev)
        assert s.pending == 1
        assert s._dead_in_heap == 0
        s.run()
        assert [l for _, l in log][-1] == "live"

    def test_cancel_after_fire_no_spurious_compaction(self):
        # a storm of cancel-after-fire calls over a large heap used to
        # inflate the tombstone count past the compaction threshold and
        # trigger O(n) rebuilds of a heap that holds no tombstones at all
        s = Scheduler()
        s.dispatch = lambda ev: None
        fired = [s.schedule(0.0, Callback(fn=lambda: None)) for _ in range(400)]
        for _ in range(200):
            s.schedule(5.0, Callback(fn=lambda: None))
        s.run(until=1.0)
        for ev in fired:
            s.cancel(ev)
        assert s.compactions == 0
        assert s.pending == 200
        assert len(s._heap) == 200


class TestMisuse:
    def test_negative_delay(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        with pytest.raises(SimulationError):
            s.schedule(-1.0, Callback(fn=lambda: None))

    def test_schedule_in_past(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        s.schedule(5.0, Callback(fn=lambda: None))
        s.run()
        with pytest.raises(SimulationError):
            s.schedule_at(1.0, Callback(fn=lambda: None))

    def test_no_dispatch_installed(self):
        s = Scheduler()
        with pytest.raises(SimulationError):
            s.run()

    def test_reentrant_run_rejected(self):
        s = Scheduler()

        def dispatch(ev):
            with pytest.raises(SimulationError):
                s.run()

        s.dispatch = dispatch
        s.schedule(1.0, Callback(fn=lambda: None))
        s.run()

    def test_events_scheduled_during_dispatch_run(self):
        log = []
        s = Scheduler()

        def dispatch(ev):
            log.append(ev.payload.label)
            if ev.payload.label == "first":
                s.schedule(1.0, Callback(fn=lambda: None, label="second"))

        s.dispatch = dispatch
        s.schedule(1.0, Callback(fn=lambda: None, label="first"))
        s.run()
        assert log == ["first", "second"]


class TestHeapCompaction:
    """Cancel-heavy load must not let tombstones pile up in the heap."""

    def test_heap_bounded_under_mass_cancellation(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        evs = [s.schedule(float(i + 1), Callback(fn=lambda: None))
               for i in range(10_000)]
        for ev in evs[100:]:  # cancel 9900 far-future events
            s.cancel(ev)
        # compaction keeps the heap within 2x the live count (plus the
        # small-heap floor below which lazy deletion is cheaper)
        assert s.pending == 100
        assert len(s._heap) <= max(2 * s.pending, Scheduler.COMPACT_MIN_HEAP)
        assert s.compactions >= 1
        s.run()
        assert s.pending == 0 and len(s._heap) == 0

    def test_small_heaps_never_compact(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        evs = [s.schedule(float(i + 1), Callback(fn=lambda: None))
               for i in range(Scheduler.COMPACT_MIN_HEAP)]
        for ev in evs:
            s.cancel(ev)
        assert s.compactions == 0  # drained lazily by run() instead
        s.run()
        assert s.pending == 0 and len(s._heap) == 0

    def test_order_and_pending_survive_compaction(self):
        log = []
        s = Scheduler()
        s.dispatch = lambda ev: log.append(ev.payload.label)
        keep, drop = [], []
        for i in range(1_000):
            ev = s.schedule(float(i + 1), Callback(fn=lambda: None, label=i))
            (keep if i % 10 == 0 else drop).append(ev)
        for ev in drop:
            s.cancel(ev)
        assert s.compactions >= 1
        assert s.pending == len(keep)
        s.run()
        assert log == sorted(ev.payload.label for ev in keep)

    def test_interleaved_cancel_and_dispatch(self):
        # compaction while run() is also draining tombstones lazily: the
        # two bookkeeping paths must agree on the tombstone count
        s = Scheduler()
        cancelled = []
        evs = {}

        def dispatch(ev):
            i = ev.payload.label
            victim = evs.pop(i + 500, None)
            if victim is not None and not victim.cancelled:
                s.cancel(victim)
                cancelled.append(victim)

        s.dispatch = dispatch
        for i in range(2_000):
            evs[i] = s.schedule(float(i + 1), Callback(fn=lambda: None, label=i))
        stats = s.run()
        assert stats.exhausted
        assert s.pending == 0 and len(s._heap) == 0
        assert stats.events_processed == 2_000 - len(cancelled)


class TestPendingUnderRestartStorms:
    """``pending`` is an O(1) live counter; crash/restart cycles cancel
    timers wholesale and must keep it consistent with the heap."""

    def _recount(self, sim):
        # iter_pending spans both storage tiers (heap + timer wheel)
        return sum(1 for _ in sim.scheduler.iter_pending())

    def test_counter_matches_heap_after_repeated_crash_restart(self):
        from repro.sim import Process, ReliableAsynchronous, Simulation

        class Noisy(Process):
            """Keeps several overlapping timers and chatters constantly."""

            def on_start(self):
                for k in range(1, 4):
                    self.ctx.set_timer(float(k), ("tick", k))

            def on_timer(self, tag):
                k = tag[1]
                self.ctx.broadcast(("noise", self.pid), include_self=False)
                self.ctx.set_timer(float(k), tag)

            def on_message(self, src, msg):
                pass

            def remake(self):
                return Noisy()

        procs = [Noisy() for _ in range(4)]
        sim = Simulation(procs, ReliableAsynchronous(0.05, 0.4), seed=31)
        # a storm: every process cycles through crash/restart repeatedly,
        # with windows overlapping across processes
        for pid in range(4):
            for k in range(5):
                sim.crash_at(pid, 3.0 + 7.0 * k + pid)
                sim.restart_at(pid, 6.0 + 7.0 * k + pid)
        sim.run(until=60.0)
        assert sim.scheduler.pending == self._recount(sim)
        # every process ended alive: its repeating timers must be pending
        assert not sim.crashed_pids
        assert sim.scheduler.pending > 0

    def test_no_orphaned_timers_for_dead_incarnations(self):
        from repro.sim import Process, ReliableAsynchronous, Simulation

        class SlowTimer(Process):
            def on_start(self):
                self.ctx.set_timer(100.0, "slow")  # outlives every crash below

            def remake(self):
                return SlowTimer()

        procs = [SlowTimer(), SlowTimer()]
        sim = Simulation(procs, ReliableAsynchronous(), seed=32)
        for k in range(3):
            sim.crash_at(0, 1.0 + 2.0 * k)
            sim.restart_at(0, 2.0 + 2.0 * k)
        sim.run(until=10.0)
        # pid 0's slow timer was re-armed by its 3rd incarnation only; the
        # three dead incarnations' copies are cancelled, not pending
        assert sim.scheduler.pending == self._recount(sim) == 2
        live = list(sim.scheduler.iter_pending())
        assert sorted(ev.payload.pid for ev in live) == [0, 1]
