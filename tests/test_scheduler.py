"""Tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import Callback
from repro.sim.scheduler import Scheduler


def make_scheduler(log):
    s = Scheduler()
    s.dispatch = lambda ev: log.append((ev.time, ev.payload.label))
    return s


class TestOrdering:
    def test_time_order(self):
        log = []
        s = make_scheduler(log)
        s.schedule(2.0, Callback(fn=lambda: None, label="b"))
        s.schedule(1.0, Callback(fn=lambda: None, label="a"))
        s.run()
        assert [l for _, l in log] == ["a", "b"]

    def test_fifo_tiebreak_at_same_time(self):
        log = []
        s = make_scheduler(log)
        for i in range(5):
            s.schedule(1.0, Callback(fn=lambda: None, label=f"e{i}"))
        s.run()
        assert [l for _, l in log] == [f"e{i}" for i in range(5)]

    def test_clock_advances_to_event_times(self):
        s = Scheduler()
        times = []
        s.dispatch = lambda ev: times.append(s.now)
        s.schedule(3.5, Callback(fn=lambda: None))
        s.schedule(1.25, Callback(fn=lambda: None))
        s.run()
        assert times == [1.25, 3.5]

    def test_schedule_at_absolute(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        s.schedule_at(10.0, Callback(fn=lambda: None))
        stats = s.run()
        assert stats.end_time == 10.0


class TestLimits:
    def test_until_leaves_future_events(self):
        log = []
        s = make_scheduler(log)
        s.schedule(1.0, Callback(fn=lambda: None, label="early"))
        s.schedule(5.0, Callback(fn=lambda: None, label="late"))
        stats = s.run(until=2.0)
        assert [l for _, l in log] == ["early"]
        assert not stats.exhausted
        assert s.pending == 1
        s.run()
        assert [l for _, l in log] == ["early", "late"]

    def test_until_advances_clock_when_quiescent(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        stats = s.run(until=42.0)
        assert stats.exhausted and s.now == 42.0

    def test_max_events(self):
        log = []
        s = make_scheduler(log)
        for i in range(10):
            s.schedule(float(i), Callback(fn=lambda: None, label=str(i)))
        stats = s.run(max_events=3)
        assert stats.events_processed == 3
        assert len(log) == 3


class TestCancellation:
    def test_cancelled_event_skipped(self):
        log = []
        s = make_scheduler(log)
        ev = s.schedule(1.0, Callback(fn=lambda: None, label="cancel-me"))
        s.schedule(2.0, Callback(fn=lambda: None, label="keep"))
        s.cancel(ev)
        s.run()
        assert [l for _, l in log] == ["keep"]

    def test_pending_ignores_cancelled(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        ev = s.schedule(1.0, Callback(fn=lambda: None))
        assert s.pending == 1
        s.cancel(ev)
        assert s.pending == 0

    def test_double_cancel_counts_once(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        ev = s.schedule(1.0, Callback(fn=lambda: None))
        s.schedule(2.0, Callback(fn=lambda: None))
        s.cancel(ev)
        s.cancel(ev)
        assert s.pending == 1

    def test_pending_tracks_dispatch_and_cancel_through_run(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        evs = [s.schedule(float(i + 1), Callback(fn=lambda: None)) for i in range(5)]
        assert s.pending == 5
        s.cancel(evs[3])
        assert s.pending == 4
        s.run(until=2.0)  # dispatches t=1 and t=2
        assert s.pending == 2
        s.run()
        assert s.pending == 0


class TestMisuse:
    def test_negative_delay(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        with pytest.raises(SimulationError):
            s.schedule(-1.0, Callback(fn=lambda: None))

    def test_schedule_in_past(self):
        s = Scheduler()
        s.dispatch = lambda ev: None
        s.schedule(5.0, Callback(fn=lambda: None))
        s.run()
        with pytest.raises(SimulationError):
            s.schedule_at(1.0, Callback(fn=lambda: None))

    def test_no_dispatch_installed(self):
        s = Scheduler()
        with pytest.raises(SimulationError):
            s.run()

    def test_reentrant_run_rejected(self):
        s = Scheduler()

        def dispatch(ev):
            with pytest.raises(SimulationError):
                s.run()

        s.dispatch = dispatch
        s.schedule(1.0, Callback(fn=lambda: None))
        s.run()

    def test_events_scheduled_during_dispatch_run(self):
        log = []
        s = Scheduler()

        def dispatch(ev):
            log.append(ev.payload.label)
            if ev.payload.label == "first":
                s.schedule(1.0, Callback(fn=lambda: None, label="second"))

        s.dispatch = dispatch
        s.schedule(1.0, Callback(fn=lambda: None, label="first"))
        s.run()
        assert log == ["first", "second"]
