"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.crypto import SignatureScheme
from repro.sim import ReliableAsynchronous, Simulation


@pytest.fixture
def scheme4() -> SignatureScheme:
    return SignatureScheme(4, seed=99)


def run_async_sim(processes, seed=0, until=None, min_delay=0.01, max_delay=0.5,
                  objects=(), **kwargs):
    """Build + run a simulation under standard asynchrony; returns the sim."""
    sim = Simulation(
        processes, ReliableAsynchronous(min_delay, max_delay), seed=seed, **kwargs
    )
    for obj in objects:
        sim.memory.register(obj)
    if until is None:
        sim.run_to_quiescence()
    else:
        sim.run(until=until)
    return sim
