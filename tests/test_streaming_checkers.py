"""Streaming checkers vs batch checkers: identical verdicts, fail-fast aborts.

The Trace-v2 refactor rebuilt every property checker around an incremental
core that runs both ways — batch (``check_*`` over a finished trace) and
streaming (attached as a live :class:`TraceObserver`). These tests pin the
contract: same state, same report, and with ``fail_fast=True`` the run
stops at the exact violating event.
"""

from __future__ import annotations

import random

import pytest

from repro.agreement.definitions import (
    WEAK,
    AgreementStreamChecker,
    check_agreement,
)
from repro.consensus.safety import ReplicationStreamChecker, check_replication
from repro.core.directionality import (
    DirectionalityStreamChecker,
    check_directionality,
)
from repro.core.srb import SRBStreamChecker, check_srb
from repro.errors import PropertyViolation
from repro.faults.chaos import make_schedule, run_chaos
from repro.sim.trace import TraceStore

SEEDS = range(11)  # must mirror tests/test_chaos.py: the tier-1 sweep grid


def recorded_through(trace_builder, checker):
    """Build a trace while ``checker`` rides along as a live observer."""
    store = TraceStore()
    store.subscribe(checker)
    trace_builder(store)
    return store


# --- synthetic trace builders ---------------------------------------------


def srb_trace(store, seed=0, violate=False):
    rng = random.Random(seed)
    msgs = [(k, f"m{k}") for k in range(1, 6)]
    t = 0.0
    for k, m in msgs:
        store.record(t, "bcast", 0, seq=k, value=m)
        t += 1.0
    for p in (1, 2, 3):
        order = list(msgs)
        if violate and p == 2:
            order[0], order[1] = order[1], order[0]  # out-of-order delivery
        elif not violate:
            rng.shuffle(order)
            order.sort()  # correct receivers deliver in seq order
        for k, m in order:
            store.record(t, "bcast_deliver", p, sender=0, seq=k, value=m)
            t += 1.0


def rounds_trace(store, seed=0, violate=False):
    rng = random.Random(seed)
    pids = (0, 1, 2)
    t = 0.0
    for r in range(1, 4):
        for p in pids:
            store.record(t, "round_sent", p, round=r)
            t += 1.0
        for p in pids:
            for q in pids:
                if q == p:
                    continue
                if violate and r == 2 and {p, q} == {0, 1}:
                    continue  # neither of the pair hears the other
                if rng.random() < 0.9:
                    store.record(t, "round_recv", p, round=r, src=q)
                    t += 1.0
        for p in pids:
            store.record(t, "round_end", p, round=r)
            t += 1.0


def replication_trace(store, seed=0, violate=False):
    rng = random.Random(seed)
    ops = [(c, i, f"op{c}-{i}") for c in (3, 4) for i in range(3)]
    rng.shuffle(ops)
    t = 0.0
    for slot, (client, req_id, op) in enumerate(ops, start=1):
        for replica in (0, 1, 2):
            result = f"r{slot}"
            if violate and slot == 3 and replica == 2:
                result = "diverged"
            store.record(
                t, "custom", replica, event="execute", seq=slot,
                client=client, req_id=req_id, op=op, result=result,
            )
            t += 1.0
    for client in (3, 4):
        store.record(t, "custom", client, event="client_done", ops=3)
        t += 1.0


def agreement_trace(store, seed=0, violate=False):
    values = {0: "v", 1: "v", 2: "w" if violate else "v"}
    for t, (p, v) in enumerate(values.items()):
        store.record(float(t), "decide", p, value=v)


# --- streaming == batch on synthetic traces -------------------------------


class TestStreamingMatchesBatch:
    @pytest.mark.parametrize("violate", [False, True])
    @pytest.mark.parametrize("seed", range(5))
    def test_srb(self, seed, violate):
        live = SRBStreamChecker(0, [1, 2, 3])
        store = recorded_through(
            lambda s: srb_trace(s, seed=seed, violate=violate), live
        )
        batch = check_srb(store, 0, [1, 2, 3])
        assert live.finish() == batch
        assert batch.ok is (not violate)
        if violate:
            assert live.online_violations  # flagged at the event, pre-finish

    @pytest.mark.parametrize("violate", [False, True])
    @pytest.mark.parametrize("seed", range(5))
    def test_directionality(self, seed, violate):
        live = DirectionalityStreamChecker([0, 1, 2])
        store = recorded_through(
            lambda s: rounds_trace(s, seed=seed, violate=violate), live
        )
        batch = check_directionality(store, [0, 1, 2])
        assert live.finish() == batch
        assert batch.is_unidirectional is (not violate)

    @pytest.mark.parametrize("violate", [False, True])
    @pytest.mark.parametrize("seed", range(5))
    def test_replication(self, seed, violate):
        live = ReplicationStreamChecker([0, 1, 2])
        store = recorded_through(
            lambda s: replication_trace(s, seed=seed, violate=violate), live
        )
        expected = {3: 3, 4: 3}
        batch = check_replication(store, [0, 1, 2], expected_ops=expected)
        assert live.finish(expected_ops=expected) == batch
        assert batch.ok is (not violate)

    @pytest.mark.parametrize("violate", [False, True])
    def test_agreement(self, violate):
        inputs = {0: "v", 1: "v", 2: "v"}
        live = AgreementStreamChecker(WEAK, inputs, [0, 1, 2], True)
        store = recorded_through(
            lambda s: agreement_trace(s, violate=violate), live
        )
        batch = check_agreement(store, WEAK, inputs, [0, 1, 2], True)
        assert live.finish() == batch
        assert batch.ok is (not violate)

    def test_jsonl_replay_matches_live(self):
        live = SRBStreamChecker(0, [1, 2, 3])
        store = recorded_through(lambda s: srb_trace(s, violate=True), live)
        replayed = SRBStreamChecker(0, [1, 2, 3])
        TraceStore.from_jsonl(store.to_jsonl(), observers=[replayed])
        assert replayed.finish() == live.finish()
        assert replayed.online_violations == live.online_violations


# --- fail-fast stops at the exact violating event -------------------------


class TestFailFast:
    def test_srb_raises_at_violating_event(self):
        checker = SRBStreamChecker(0, [1, 2, 3], fail_fast=True)
        store = TraceStore()
        store.subscribe(checker)
        with pytest.raises(PropertyViolation, match="SRB-stream"):
            srb_trace(store, violate=True)
        index, message = checker.online_violations[0]
        # recording stopped at the flagged event: it is the last one stored
        assert store.events()[-1].index == index
        assert "sequencing" in message

    def test_replication_raises_on_divergence(self):
        checker = ReplicationStreamChecker([0, 1, 2], fail_fast=True)
        store = TraceStore()
        store.subscribe(checker)
        with pytest.raises(PropertyViolation, match="replication-stream"):
            replication_trace(store, violate=True)
        index, message = checker.online_violations[0]
        assert store.events()[-1].index == index
        assert "diverges" in message

    def test_agreement_raises_on_conflict(self):
        inputs = {0: "v", 1: "v", 2: "v"}
        checker = AgreementStreamChecker(
            WEAK, inputs, [0, 1, 2], True, fail_fast=True
        )
        store = TraceStore()
        store.subscribe(checker)
        with pytest.raises(PropertyViolation, match="stream"):
            agreement_trace(store, violate=True)
        assert store.events()[-1].index == checker.online_violations[0][0]

    def test_directionality_raises_on_unidirectional_violation(self):
        checker = DirectionalityStreamChecker([0, 1, 2], fail_fast=True)
        store = TraceStore()
        store.subscribe(checker)
        with pytest.raises(PropertyViolation, match="unidirectionality-stream"):
            rounds_trace(store, violate=True)
        assert checker.online_violations


# --- the chaos sweep: streaming and batch agree run for run ----------------


class TestChaosSweepEquivalence:
    def test_full_sweep_identical_verdicts(self):
        """Acceptance bar: on every one of the tier-1 sweep's seeded
        schedules (11 seeds x 2 protocols), the streaming run and the
        batch run report the same verdict, violations, and stats."""
        for protocol in ("srb-uni", "minbft"):
            for seed in SEEDS:
                s = run_chaos(protocol, seed)  # streaming is the default
                b = run_chaos(protocol, seed, streaming=False)
                assert s.ok and b.ok, (protocol, seed)
                assert s.violations == b.violations == []
                assert s.stats == b.stats, (protocol, seed)
                assert s.abort_index is None and b.abort_index is None

    def test_broken_protocol_same_verdict_and_early_abort(self):
        aborted = 0
        for seed in range(12):
            s = run_chaos("srb-uni-broken", seed)
            b = run_chaos("srb-uni-broken", seed, streaming=False)
            assert s.ok == b.ok, seed
            if not s.ok:
                assert s.abort_index is not None
                assert f"event #{s.abort_index}" in s.violations[0]
                # the streaming run stopped early: it saw at most as many
                # messages as the batch run, which always runs to horizon
                assert s.stats["messages_sent"] <= b.stats["messages_sent"]
                aborted += 1
        assert aborted, "no broken run aborted in 12 schedules"

    def test_fault_free_pids_known_before_run(self):
        for seed in range(20):
            schedule = make_schedule(seed, crashable=[1, 2, 3])
            free = schedule.fault_free_pids(4)
            assert 0 in free  # the protected sender never crashes
            crashed = {c.pid for c in schedule.crashes}
            assert set(free) == set(range(4)) - crashed
