"""At-least-once delivery: every protocol must be idempotent.

Real transports and retransmission layers duplicate messages; these tests
run the main protocol stacks under :class:`DuplicatingAsynchronous` and
assert nothing double-fires.
"""

from __future__ import annotations

import pytest

from repro.broadcast import BrachaRBC, check_reliable_broadcast
from repro.consensus import build_minbft_system, build_pbft_system, check_replication
from repro.core.srb import check_srb
from repro.core.srb_from_trinc import SRBFromTrInc
from repro.errors import ConfigurationError
from repro.hardware import TrincAuthority
from repro.sim import Simulation
from repro.sim.adversary import DuplicatingAsynchronous


class TestAdversary:
    def test_duplicates_are_injected(self):
        from repro.sim import Process

        class Talker(Process):
            def on_start(self):
                for _ in range(10):
                    self.ctx.broadcast(("M",), include_self=False)

        adv = DuplicatingAsynchronous(dup_probability=0.9)
        sim = Simulation([Talker(), Process()], adv, seed=1)
        sim.run_to_quiescence()
        assert adv.duplicates_injected > 0
        # extra copies are tracked separately so delivery_ratio stays <= 1
        assert sim.network.duplicates_delivered == adv.duplicates_injected
        assert sim.network.messages_delivered == sim.network.messages_sent
        assert sim.network.delivery_ratio == 1.0

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            DuplicatingAsynchronous(dup_probability=1.5)
        with pytest.raises(ConfigurationError):
            DuplicatingAsynchronous(max_copies=0)


class TestProtocolIdempotence:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_trusted_log_srb(self, seed):
        n = 4
        auth = TrincAuthority(n, seed=seed)
        procs = [
            SRBFromTrInc(0, n, auth, trinket=auth.trinket(p) if p == 0 else None)
            for p in range(n)
        ]
        sim = Simulation(procs, DuplicatingAsynchronous(dup_probability=0.6),
                         seed=seed)
        sim.at(0.1, lambda: procs[0].broadcast("a"))
        sim.at(0.2, lambda: procs[0].broadcast("b"))
        sim.run_to_quiescence()
        rep = check_srb(sim.trace, 0, range(n))
        rep.assert_ok()
        assert len(rep.deliveries) == n * 2  # exactly once each

    def test_bracha(self):
        n, f = 4, 1
        procs = [BrachaRBC(0, n, f) for _ in range(n)]
        sim = Simulation(procs, DuplicatingAsynchronous(dup_probability=0.6),
                         seed=3)
        sim.at(0.1, lambda: procs[0].broadcast("v"))
        sim.run_to_quiescence()
        rep = check_reliable_broadcast(sim.trace, 0, "v", range(n), True)
        rep.assert_ok()
        assert len(sim.trace.decisions()) == n  # one commit per process

    def test_minbft(self):
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=4, seed=4,
            adversary=DuplicatingAsynchronous(dup_probability=0.5),
        )
        sim.run(until=3000.0)
        n = len(reps)
        rep = check_replication(sim.trace, range(n), expected_ops={n: 4})
        rep.assert_ok()
        assert all(r.commits_executed == 4 for r in reps)

    def test_pbft(self):
        sim, reps, clients = build_pbft_system(
            f=1, n_clients=1, ops_per_client=4, seed=5,
            adversary=DuplicatingAsynchronous(dup_probability=0.5),
        )
        sim.run(until=3000.0)
        n = len(reps)
        rep = check_replication(sim.trace, range(n), expected_ops={n: 4})
        rep.assert_ok()
        assert all(r.commits_executed == 4 for r in reps)
