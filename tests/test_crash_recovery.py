"""Tests for crash-recovery: restart semantics, timer purge, durable hardware."""

from __future__ import annotations

import pytest

from repro.core import build_sm_srb_system, check_srb
from repro.core.rounds import SharedMemoryRoundTransport
from repro.core.srb_from_uni import SRBFromUnidirectional
from repro.errors import ConfigurationError, SimulationError
from repro.hardware.trinc import TrincAuthority
from repro.sim import Process, ReliableAsynchronous, Simulation


class Ticker(Process):
    """Re-arms a 1s timer forever; crash must stop (and purge) it."""

    def __init__(self):
        super().__init__()
        self.fired = 0

    def on_start(self):
        self.ctx.set_timer(1.0, "tick")

    def on_timer(self, tag):
        self.fired += 1
        self.ctx.set_timer(1.0, "tick")


class Recv(Process):
    def __init__(self):
        super().__init__()
        self.received = []

    def on_message(self, src, msg):
        self.received.append((self.ctx.now, msg))

    def remake(self):
        return Recv()


class Pinger(Process):
    """Sends ("ping", i) to process 1 at times 1, 2, ..., count."""

    def __init__(self, count):
        super().__init__()
        self.count = count

    def on_start(self):
        self.ctx.set_timer(1.0, 1)

    def on_timer(self, i):
        self.ctx.send(1, ("ping", i))
        if i < self.count:
            self.ctx.set_timer(1.0, i + 1)


class TestCrashPurgesTimers:
    def test_crash_stops_and_purges_repeating_timer(self):
        procs = [Ticker(), Ticker()]
        sim = Simulation(procs, ReliableAsynchronous(), seed=0)
        sim.crash_at(0, 5.5)
        sim.run(until=20.0)
        assert procs[0].fired == 5
        assert procs[1].fired == 20
        # regression: the crashed process's pending timer used to sit in
        # sim._timers forever
        assert all(ev.payload.pid != 0 for ev in sim._timers.values())


class TestRestartAPI:
    def _sim(self):
        procs = [Pinger(6), Recv()]
        sim = Simulation(procs, ReliableAsynchronous(0.1, 0.2), seed=1)
        return sim, procs

    def test_restart_requires_crashed(self):
        sim, _ = self._sim()
        with pytest.raises(ConfigurationError, match="not crashed"):
            sim.restart(1)

    def test_restart_without_factory_needs_remake(self):
        procs = [Pinger(1), Recv()]
        sim = Simulation(procs, ReliableAsynchronous(), seed=2)
        sim.crash_at(0, 1.5)
        sim.run(until=2.0)
        with pytest.raises(SimulationError, match="remake"):
            sim.restart(0)  # Pinger has no remake()

    def test_factory_must_build_fresh_instance(self):
        sim, procs = self._sim()
        sim.crash_at(1, 1.0)
        sim.run(until=2.0)
        with pytest.raises(ConfigurationError, match="new instance"):
            sim.restart(1, factory=lambda: procs[1])

    def test_volatile_state_lost_messages_during_outage_dropped(self):
        sim, procs = self._sim()
        incarnations = []
        sim.crash_at(1, 1.5)

        def factory():
            fresh = Recv()
            incarnations.append(fresh)
            return fresh

        sim.restart_at(1, 3.5, factory=factory)
        sim.run(until=30.0)
        fresh = incarnations[0]
        # pings 2 and 3 fell in the outage window [1.5, 3.5): dropped.
        old_msgs = [m for _, m in procs[1].received]
        new_msgs = [m for _, m in fresh.received]
        assert old_msgs == [("ping", 1)]  # volatile state did not transfer
        assert new_msgs == [("ping", i) for i in (4, 5, 6)]
        assert sim.incarnation_of(1) == 1
        assert sim.restarted_pids == frozenset({1})
        assert sim.fault_free_pids == (0,)
        assert fresh.ctx.incarnation == 1
        restarts = [
            ev for ev in sim.trace.events("custom", pid=1)
            if ev.field("event") == "restart"
        ]
        assert len(restarts) == 1 and restarts[0].field("incarnation") == 1

    def test_remake_used_when_no_factory(self):
        sim, procs = self._sim()
        sim.crash_at(1, 1.5)
        sim.restart_at(1, 3.5)  # Recv.remake()
        sim.run(until=30.0)
        assert isinstance(sim.processes[1], Recv)
        assert sim.processes[1] is not procs[1]
        assert [m for _, m in sim.processes[1].received] == [
            ("ping", i) for i in (4, 5, 6)
        ]

    def test_double_restart_counts_incarnations(self):
        sim, _ = self._sim()
        sim.crash_at(1, 1.5)
        sim.restart_at(1, 2.5)
        sim.crash_at(1, 3.5)
        sim.restart_at(1, 4.5)
        sim.run(until=30.0)
        assert sim.incarnation_of(1) == 2
        assert sim.processes[1].ctx.incarnation == 2


class TestDurableHardware:
    def test_trinket_survives_restart_and_refuses_replay(self):
        auth = TrincAuthority(2, seed=0)
        trinket = auth.trinket(0)
        assert trinket.attest(1, "A") is not None
        assert trinket.attest(2, "B") is not None
        # host reboots; the correct recovery path re-wires the same trinket,
        # which refuses to re-bind already-used counter values
        assert trinket.attest(1, "A'") is None
        assert trinket.attest(2, "B'") is None
        assert trinket.attest(3, "C") is not None
        assert trinket.last_seq() == 3

    def test_second_issue_refused(self):
        auth = TrincAuthority(2, seed=0)
        auth.trinket(0)
        with pytest.raises(ConfigurationError, match="already issued"):
            auth.trinket(0)

    def test_volatile_trinket_enables_post_restart_equivocation(self):
        """Negative model: a non-durable counter breaks non-equivocation."""
        auth = TrincAuthority(2, seed=0)
        trinket = auth.trinket(0)
        a1 = trinket.attest(1, "A")
        lossy = auth.reissue_volatile(0)  # counters reset with the host
        a2 = lossy.attest(1, "B")
        assert a1 is not None and a2 is not None
        assert auth.check(a1, 0) and auth.check(a2, 0)
        assert a1.seq == a2.seq == 1 and a1.message != a2.message

    def test_reissue_volatile_requires_prior_issue(self):
        auth = TrincAuthority(2, seed=0)
        with pytest.raises(ConfigurationError, match="never issued"):
            auth.reissue_volatile(0)


class TestMinBFTResync:
    def test_rebooted_backup_resyncs_and_catches_up_via_checkpoint(self):
        """No view change here — the primary stays up — so recovery must
        come entirely from the RESYNC handshake: peers authorize the UI
        enforcer to skip the unrecoverable prefix and hand over the stable
        checkpoint, which fast-forwards the reborn replica's state."""
        from repro.consensus import build_minbft_system, check_replication
        from repro.consensus.apps import make_app
        from repro.consensus.minbft import MinBFTReplica

        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=6, seed=21,
            req_timeout=20.0, retry_timeout=60.0,
            replica_factory=lambda pid, **kw: MinBFTReplica(
                checkpoint_interval=2, **kw
            ),
        )
        sim.crash_at(2, 1.0)

        def factory():
            old = reps[2]
            fresh = MinBFTReplica(
                n=old.n, usig=old.usig, verifier=old.verifier,
                scheme=old.scheme, signer=old.signer,
                app=make_app("counter"), req_timeout=old.req_timeout,
                checkpoint_interval=2,
            )
            reps[2] = fresh
            return fresh

        sim.restart_at(2, 60.0, factory=factory)  # well after quiescence
        sim.run(until=4000.0)
        check_replication(sim.trace, [0, 1], expected_ops={3: 6}).assert_ok()
        fresh = reps[2]
        assert fresh.ctx.incarnation == 1
        assert len(fresh._resynced) == 2  # both peers answered
        assert sum(r.resyncs_answered for r in (reps[0], reps[1])) == 2
        # checkpoint transfer fast-forwarded the reborn replica's state
        transfers = [
            ev for ev in sim.trace.events("custom", pid=2)
            if ev.field("event") == "state_transfer"
        ]
        assert transfers and transfers[0].field("stable_seq") == 6
        assert fresh.exec_next == 7  # all six committed ops covered
        assert fresh.app.digest() == reps[0].app.digest()


class TestSharedMemorySRBRecovery:
    def test_restarted_process_recovers_stream_from_persistent_logs(self):
        """The paper's durability point: with SWMR logs as the round medium,
        a rebooted process recovers every delivery by rescanning memory —
        no peer help, no retransmission protocol."""
        sim, procs, scheme = build_sm_srb_system(n=4, t=1, seed=5)
        for i in range(3):
            sim.at(1.0 + i, lambda i=i: procs[0].broadcast(f"m{i}"))
        sim.crash_at(2, 2.0)
        signer = procs[2].signer

        def factory():
            return SRBFromUnidirectional(
                SharedMemoryRoundTransport(), 0, 1, scheme, signer
            )

        sim.restart_at(2, 12.0, factory=factory)
        sim.run(until=150.0)
        check_srb(sim.trace, 0, sim.fault_free_pids).assert_ok()
        post_restart = [
            (ev.field("seq"), ev.field("value"))
            for ev in sim.trace.events("bcast_deliver", pid=2)
            if ev.time >= 12.0
        ]
        assert post_restart == [(1, "m0"), (2, "m1"), (3, "m2")]


class Chatter(Process):
    """Sends ("hi", i) to every peer at times 1, 2, ..., count."""

    def __init__(self, count):
        super().__init__()
        self.count = count

    def on_start(self):
        self.ctx.set_timer(1.0, 1)

    def on_timer(self, i):
        for dst in range(self.ctx.n):
            if dst != self.ctx.pid:
                self.ctx.send(dst, ("hi", i))
        if i < self.count:
            self.ctx.set_timer(1.0, i + 1)

    def remake(self):
        return Chatter(self.count)


class TestByzantineWrapperRestart:
    def test_filter_survives_restart(self):
        """Regression: ``sim.restart`` installs a fresh Context on the
        replacement process. The wrapper's context slot is a property that
        re-wraps whatever is installed, and ``remake()`` returns the
        replacement *wrapped*; before that fix, a restarted Byzantine
        process silently reverted to correct behavior mid-campaign."""
        from repro.sim.byzantine import ByzantineWrapper, drop_to

        procs = [
            ByzantineWrapper(Chatter(8), drop_to(1)),
            Recv(),
            Recv(),
        ]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.02), seed=3)
        sim.crash_at(0, 3.5)
        sim.restart_at(0, 4.5)
        sim.run(until=60.0)

        reborn = sim.processes[0]
        assert isinstance(reborn, ByzantineWrapper)
        assert reborn is not procs[0]
        # the victim hears nothing from either incarnation
        assert procs[1].received == []
        # the non-victim hears both incarnations: the wrapper is not a
        # total silencer, and the restart did not mute the inner process
        times = [t for t, _ in procs[2].received]
        assert any(t < 3.5 for t in times), "pre-crash sends missing"
        assert any(t > 4.5 for t in times), "post-restart sends missing"
