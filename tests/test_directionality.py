"""Unit tests for the directionality checker on synthetic traces."""

from __future__ import annotations

from repro.core.directionality import (
    BIDIRECTIONAL,
    UNIDIRECTIONAL,
    ZERO_DIRECTIONAL,
    check_directionality,
)
from repro.errors import PropertyViolation
from repro.sim.trace import Trace

import pytest


def trace_of(events):
    """events: list of (kind, pid, fields) in order; times auto-increment."""
    t = Trace()
    for i, (kind, pid, fields) in enumerate(events):
        t.record(float(i), kind, pid, **fields)
    return t


def sent(pid, r, payload="m"):
    return ("round_sent", pid, {"round": r, "payload": payload})


def recv(pid, r, src, payload="m"):
    return ("round_recv", pid, {"round": r, "src": src, "payload": payload})


def end(pid, r):
    return ("round_end", pid, {"round": r})


class TestClassification:
    def test_both_received_is_bidirectional(self):
        t = trace_of([
            sent(0, 1), sent(1, 1),
            recv(0, 1, 1), recv(1, 1, 0),
            end(0, 1), end(1, 1),
        ])
        rep = check_directionality(t, [0, 1])
        assert rep.classify() == BIDIRECTIONAL
        assert rep.pairs_checked == 1

    def test_one_direction_is_unidirectional(self):
        t = trace_of([
            sent(0, 1), sent(1, 1),
            recv(1, 1, 0),
            end(0, 1), end(1, 1),
        ])
        rep = check_directionality(t, [0, 1])
        assert rep.classify() == UNIDIRECTIONAL
        assert len(rep.bidirectional_violations) == 1

    def test_neither_is_zero_directional(self):
        t = trace_of([
            sent(0, 1), sent(1, 1),
            end(0, 1), end(1, 1),
        ])
        rep = check_directionality(t, [0, 1])
        assert rep.classify() == ZERO_DIRECTIONAL
        with pytest.raises(PropertyViolation):
            rep.assert_unidirectional()

    def test_receive_after_end_does_not_count(self):
        t = trace_of([
            sent(0, 1), sent(1, 1),
            end(0, 1), end(1, 1),
            recv(0, 1, 1), recv(1, 1, 0),  # both too late
        ])
        rep = check_directionality(t, [0, 1])
        assert not rep.is_unidirectional

    def test_one_late_one_in_time_is_unidirectional(self):
        t = trace_of([
            sent(0, 1), sent(1, 1),
            recv(1, 1, 0),
            end(0, 1), end(1, 1),
            recv(0, 1, 1),  # late, but 1 already heard 0 in time
        ])
        rep = check_directionality(t, [0, 1])
        assert rep.is_unidirectional


class TestObligationScoping:
    def test_unfinished_round_imposes_no_uni_obligation(self):
        t = trace_of([
            sent(0, 1), sent(1, 1),
            end(0, 1),  # process 1 never ends round 1
        ])
        rep = check_directionality(t, [0, 1])
        assert rep.is_unidirectional

    def test_unfinished_receiver_skips_bidirectional_check(self):
        t = trace_of([sent(0, 1), end(0, 1), sent(1, 1)])
        rep = check_directionality(t, [0, 1])
        # 1 never ended, so no obligation on 1; 0 ended without 1's message
        assert len(rep.bidirectional_violations) == 1
        assert rep.bidirectional_violations[0].detail.startswith("0 ended")

    def test_one_sided_send_checked_for_bidirectional_only(self):
        t = trace_of([sent(0, 1), end(0, 1), end(1, 1)])
        rep = check_directionality(t, [0, 1])
        assert rep.pairs_checked == 0  # uni premise needs both to send
        assert len(rep.bidirectional_violations) == 1

    def test_byzantine_excluded(self):
        t = trace_of([
            sent(0, 1), sent(1, 1), sent(2, 1),
            recv(0, 1, 1), recv(1, 1, 0),
            end(0, 1), end(1, 1), end(2, 1),
        ])
        rep = check_directionality(t, [0, 1])  # 2 not in correct set
        assert rep.is_unidirectional

    def test_rounds_checked_counts_labels(self):
        t = trace_of([
            sent(0, "a"), end(0, "a"),
            sent(0, ("b", 1)), end(0, ("b", 1)),
        ])
        rep = check_directionality(t, [0])
        assert rep.rounds_checked == 2

    def test_separate_labels_independent(self):
        t = trace_of([
            sent(0, "a"), sent(1, "b"),  # different labels: no pair obligation
            end(0, "a"), end(1, "b"),
        ])
        rep = check_directionality(t, [0, 1])
        assert rep.pairs_checked == 0 and rep.is_unidirectional

    def test_violation_details_name_pair_and_round(self):
        t = trace_of([
            sent(0, 7), sent(1, 7),
            end(0, 7), end(1, 7),
        ])
        rep = check_directionality(t, [0, 1])
        v = rep.unidirectional_violations[0]
        assert (v.p, v.q, v.round) == (0, 1, 7)
