"""Tests for the deadline monitor and the streaming liveness auditors."""

from __future__ import annotations

import pytest

from repro.consensus.safety import (
    ReplicationLivenessChecker,
    check_replication_liveness,
)
from repro.core.srb import SRBLivenessChecker, check_srb_liveness
from repro.errors import ConfigurationError, PropertyViolation
from repro.sim.liveness import DeadlineMonitor
from repro.sim.trace import BCAST, BCAST_DELIVER, CUSTOM, TraceStore


class TestDeadlineMonitor:
    def test_satisfied_before_deadline_is_clean(self):
        m = DeadlineMonitor()
        m.expect("a", 10.0, "a late")
        assert m.satisfy("a")
        assert m.advance(100.0) == []

    def test_expiry_is_permanent(self):
        m = DeadlineMonitor()
        m.expect("a", 10.0, "a late")
        expired = m.advance(10.5)
        assert [ob.key for ob in expired] == ["a"]
        # satisfying after expiry neither crashes nor resurrects it
        assert not m.satisfy("a")

    def test_deadline_is_exclusive(self):
        m = DeadlineMonitor()
        m.expect("a", 10.0, "a late")
        assert m.advance(10.0) == []  # due *at* 10 is not yet violated
        assert [ob.key for ob in m.advance(10.0 + 1e-9)] == ["a"]

    def test_reregistration_keeps_laxer_deadline(self):
        m = DeadlineMonitor()
        m.expect("a", 10.0, "first")
        m.expect("a", 5.0, "tighter must not win")
        assert m.advance(7.0) == []
        m.expect("a", 20.0, "laxer wins")
        assert m.advance(15.0) == []
        assert [ob.message for ob in m.advance(25.0)] == ["laxer wins"]

    def test_flush_splits_violated_and_unresolved(self):
        m = DeadlineMonitor()
        m.expect("due", 10.0, "due")
        m.expect("beyond", 50.0, "beyond the run")
        violated, unresolved = m.flush(20.0)
        assert [ob.key for ob in violated] == ["due"]
        assert [ob.key for ob in unresolved] == ["beyond"]
        assert len(m) == 0

    def test_pending_sorted_by_deadline(self):
        m = DeadlineMonitor()
        m.expect("b", 20.0, "b")
        m.expect("a", 10.0, "a")
        assert [ob.key for ob in m.pending()] == ["a", "b"]


def _custom(trace, time, pid, **fields):
    trace.record(time, CUSTOM, pid, **fields)


class TestReplicationLivenessChecker:
    def _checker(self, **kw):
        args = dict(
            gst=100.0,
            request_bound=50.0,
            fault_free_replicas=[0, 1, 2],
            fault_free_clients=[3],
            f=1,
        )
        args.update(kw)
        return ReplicationLivenessChecker(**args)

    def test_pre_gst_request_owes_nothing_until_gst_plus_bound(self):
        c = self._checker()
        t = TraceStore()
        _custom(t, 5.0, 3, event="request_sent", req_id=1)
        _custom(t, 120.0, 3, event="request_done", req_id=1, result=1, latency=115.0)
        report = c.consume(t).finish(end_time=600.0)
        assert report.ok
        assert report.obligations_satisfied == 1

    def test_missed_request_deadline_is_flagged(self):
        c = self._checker()
        t = TraceStore()
        _custom(t, 5.0, 3, event="request_sent", req_id=1)
        report = c.consume(t).finish(end_time=600.0)
        assert not report.ok
        assert "never completed" in report.violations[0]

    def test_request_past_end_of_run_is_unresolved_not_violated(self):
        c = self._checker()
        t = TraceStore()
        _custom(t, 5.0, 3, event="request_sent", req_id=1)
        report = c.consume(t).finish(end_time=120.0)  # deadline is 150
        assert report.ok
        assert len(report.unresolved) == 1

    def test_lone_view_change_starter_is_not_an_obligation(self):
        # a single stuck replica whose quorum partners crashed is legal
        c = self._checker()
        t = TraceStore()
        _custom(t, 110.0, 0, event="view_change_start", new_view=1)
        report = c.consume(t).finish(end_time=600.0)
        assert report.ok
        assert report.obligations_armed == 0

    def test_quorum_backed_view_change_must_terminate(self):
        c = self._checker()
        t = TraceStore()
        _custom(t, 110.0, 0, event="view_change_start", new_view=1)
        _custom(t, 112.0, 1, event="view_change_start", new_view=1)  # f+1 backing
        report = c.consume(t).finish(end_time=600.0)
        assert not report.ok
        assert "view change to view 1" in report.violations[0]

    def test_adoption_satisfies_all_lower_targets(self):
        c = self._checker()
        t = TraceStore()
        _custom(t, 110.0, 0, event="view_change_start", new_view=1)
        _custom(t, 112.0, 1, event="view_change_start", new_view=1)
        _custom(t, 120.0, 2, event="view_adopted", view=2)
        report = c.consume(t).finish(end_time=600.0)
        assert report.ok
        assert report.obligations_satisfied == 1

    def test_streaming_fail_fast_aborts_at_expiry(self):
        c = self._checker(fail_fast=True)
        t = TraceStore()
        t.subscribe(c)
        _custom(t, 5.0, 3, event="request_sent", req_id=1)
        with pytest.raises(PropertyViolation):
            # first event past the 150.0 deadline proves the violation
            _custom(t, 200.0, 0, event="execute", seq=1, client=3,
                    req_id=9, op=("add", 1), result=1)

    def test_batch_equals_streaming_verdict(self):
        t = TraceStore()
        stream = self._checker()
        t.subscribe(stream)
        _custom(t, 5.0, 3, event="request_sent", req_id=1)
        _custom(t, 110.0, 3, event="request_done", req_id=1, result=1, latency=105.0)
        _custom(t, 120.0, 3, event="request_sent", req_id=2)  # never completes
        _custom(t, 110.0 + 300.0, 0, event="view_adopted", view=0)
        s_report = stream.finish(end_time=600.0)
        b_report = check_replication_liveness(
            t, gst=100.0, request_bound=50.0,
            fault_free_replicas=[0, 1, 2], fault_free_clients=[3], f=1,
            end_time=600.0,
        )
        assert s_report.violations == b_report.violations
        assert s_report.unresolved == b_report.unresolved
        assert s_report.ok == b_report.ok

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ConfigurationError):
            self._checker(request_bound=0.0)


class TestSRBLivenessChecker:
    def test_delivered_everywhere_is_clean(self):
        t = TraceStore()
        t.record(5.0, BCAST, 0, seq=1, value="m")
        for p in (0, 1, 2):
            t.record(30.0, BCAST_DELIVER, p, sender=0, seq=1, value="m")
        report = check_srb_liveness(
            t, gst=20.0, bound=50.0, fault_free=[0, 1, 2], end_time=600.0
        )
        assert report.ok
        assert report.obligations_satisfied == 3

    def test_missing_receiver_is_flagged(self):
        t = TraceStore()
        t.record(5.0, BCAST, 0, seq=1, value="m")
        t.record(30.0, BCAST_DELIVER, 0, sender=0, seq=1, value="m")
        t.record(31.0, BCAST_DELIVER, 1, sender=0, seq=1, value="m")
        report = check_srb_liveness(
            t, gst=20.0, bound=50.0, fault_free=[0, 1, 2], end_time=600.0
        )
        assert not report.ok
        assert "process 2" in report.violations[0]

    def test_faulty_sender_and_receiver_owe_nothing(self):
        t = TraceStore()
        t.record(5.0, BCAST, 3, seq=1, value="m")  # 3 is not fault-free
        report = check_srb_liveness(
            t, gst=20.0, bound=50.0, fault_free=[0, 1, 2], end_time=600.0
        )
        assert report.ok
        assert report.obligations_armed == 0

    def test_batch_equals_streaming_verdict(self):
        t = TraceStore()
        stream = SRBLivenessChecker(gst=20.0, bound=50.0, fault_free=[0, 1])
        t.subscribe(stream)
        t.record(5.0, BCAST, 0, seq=1, value="m1")
        t.record(25.0, BCAST_DELIVER, 0, sender=0, seq=1, value="m1")
        t.record(26.0, BCAST_DELIVER, 1, sender=0, seq=1, value="m1")
        t.record(30.0, BCAST, 0, seq=2, value="m2")
        t.record(31.0, BCAST_DELIVER, 0, sender=0, seq=2, value="m2")
        # pid 1 never delivers seq 2
        s_report = stream.finish(end_time=600.0)
        b_report = check_srb_liveness(
            t, gst=20.0, bound=50.0, fault_free=[0, 1], end_time=600.0
        )
        assert s_report.violations == b_report.violations
        assert s_report.ok == b_report.ok
        assert not s_report.ok
