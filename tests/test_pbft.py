"""System tests for the PBFT baseline."""

from __future__ import annotations

import pytest

from repro.consensus import build_pbft_system, check_replication
from repro.consensus.pbft import PBFTReplica, PRE_PREPARE, pp_domain
from repro.crypto.serialize import content_hash
from repro.errors import ConfigurationError


class TestHappyPath:
    def test_single_client(self):
        sim, reps, clients = build_pbft_system(f=1, n_clients=1,
                                               ops_per_client=4, seed=1)
        sim.run(until=3000.0)
        n = len(reps)
        rep = check_replication(sim.trace, range(n), expected_ops={n: 4})
        rep.assert_ok()
        assert all(r.commits_executed == 4 for r in reps)

    def test_multi_client_kv(self):
        sim, reps, clients = build_pbft_system(f=1, n_clients=2,
                                               ops_per_client=3, app="kv", seed=2)
        sim.run(until=4000.0)
        n = len(reps)
        rep = check_replication(
            sim.trace, range(n), expected_ops={n: 3, n + 1: 3}
        )
        rep.assert_ok()
        assert len({r.app.digest() for r in reps}) == 1

    def test_f2_seven_replicas(self):
        sim, reps, clients = build_pbft_system(f=2, n_clients=1,
                                               ops_per_client=2, seed=3)
        sim.run(until=3000.0)
        rep = check_replication(sim.trace, range(7), expected_ops={7: 2})
        rep.assert_ok()


class TestFaults:
    def test_f_backup_crashes_tolerated(self):
        sim, reps, clients = build_pbft_system(f=1, n_clients=1,
                                               ops_per_client=4, seed=4)
        sim.crash_at(3, 0.5)
        sim.run(until=3000.0)
        rep = check_replication(sim.trace, [0, 1, 2], expected_ops={4: 4})
        rep.assert_ok()

    def test_primary_crash_view_change(self):
        sim, reps, clients = build_pbft_system(
            f=1, n_clients=1, ops_per_client=5, seed=5,
            req_timeout=20.0, retry_timeout=60.0,
        )
        sim.crash_at(0, 2.0)
        sim.run(until=8000.0)
        rep = check_replication(sim.trace, [1, 2, 3], expected_ops={4: 5})
        rep.assert_ok()
        assert all(r.view >= 1 for r in reps[1:])

    def test_equivocating_primary_safe(self):
        """The 3f+1 quorum intersection does the non-equivocation work here
        (no hardware): conflicting pre-prepares cannot both gather 2f+1."""

        class Equiv(PBFTReplica):
            def _propose_pending(self):
                if not self.is_primary or not self._pending:
                    return
                _key, request = sorted(self._pending.items())[0]
                # craft two pre-prepares for slot 1 with different requests:
                # the second reuses a request with a different req payload —
                # but it must be validly signed by the client, so reuse the
                # same request and vary only the slot binding to confuse halves
                d = content_hash(request)
                s1 = self.signer.sign(pp_domain(self.view, 1, d))
                for dst in range(self.n):
                    if dst < 2:
                        self.ctx.send(dst, (PRE_PREPARE, self.view, 1, request, s1))
                    # other half receives nothing -> must view-change
                self._pending.clear()

        def factory(pid, **kw):
            return Equiv(**kw) if pid == 0 else PBFTReplica(**kw)

        sim, reps, clients = build_pbft_system(
            f=1, n_clients=1, ops_per_client=2, seed=6,
            req_timeout=20.0, retry_timeout=60.0, replica_factory=factory,
        )
        sim.declare_byzantine(0)
        sim.run(until=10000.0)
        rep = check_replication(sim.trace, [1, 2, 3], expected_ops={4: 2})
        rep.assert_ok()


class TestResilienceContrast:
    """The headline comparison: MinBFT runs at n=3 where PBFT needs n=4."""

    def test_pbft_rejects_n3(self):
        from repro.consensus.apps import make_app
        from repro.crypto import SignatureScheme

        with pytest.raises(ConfigurationError, match="3f\\+1"):
            PBFTReplica(n=3, scheme=SignatureScheme(3), signer=None,
                        app=make_app("counter"))

    def test_replica_counts(self):
        from repro.consensus import build_minbft_system

        _, minbft_reps, _ = build_minbft_system(f=2, seed=0)
        _, pbft_reps, _ = build_pbft_system(f=2, seed=0)
        assert len(minbft_reps) == 5 and len(pbft_reps) == 7

    def test_message_rounds_fewer_in_minbft(self):
        """Same f, same workload: MinBFT uses fewer protocol messages."""
        from repro.consensus import build_minbft_system

        sim_m, reps_m, cl_m = build_minbft_system(f=1, n_clients=1,
                                                  ops_per_client=5, seed=7)
        sim_m.run(until=3000.0)
        sim_p, reps_p, cl_p = build_pbft_system(f=1, n_clients=1,
                                                ops_per_client=5, seed=7)
        sim_p.run(until=3000.0)
        assert len(cl_m[0].latencies) == 5 and len(cl_p[0].latencies) == 5
        assert sim_m.network.messages_sent < sim_p.network.messages_sent
