"""Unit tests for the SRB property checker on synthetic traces."""

from __future__ import annotations

import pytest

from repro.core.srb import check_srb, deliveries_by_process
from repro.errors import PropertyViolation
from repro.sim.trace import Trace


def trace_of(broadcasts, deliveries):
    """broadcasts: [(seq, value)]; deliveries: [(receiver, seq, value)]."""
    t = Trace()
    time = 0.0
    for seq, value in broadcasts:
        t.record(time, "bcast", 0, seq=seq, value=value)
        time += 1.0
    for receiver, seq, value in deliveries:
        t.record(time, "bcast_deliver", receiver, sender=0, seq=seq, value=value)
        time += 1.0
    return t


CORRECT = [0, 1, 2]


def full_delivery(broadcasts):
    return [(p, seq, v) for p in CORRECT for seq, v in broadcasts]


class TestHappyPath:
    def test_clean_run_passes(self):
        bs = [(1, "a"), (2, "b")]
        rep = check_srb(trace_of(bs, full_delivery(bs)), 0, CORRECT)
        assert rep.ok
        rep.assert_ok()

    def test_deliveries_by_process_helper(self):
        bs = [(1, "a")]
        t = trace_of(bs, full_delivery(bs))
        assert deliveries_by_process(t, 0) == {p: [(1, "a")] for p in CORRECT}


class TestValidity:
    def test_missing_delivery_flagged(self):
        bs = [(1, "a")]
        dv = [(0, 1, "a"), (1, 1, "a")]  # process 2 never delivers
        rep = check_srb(trace_of(bs, dv), 0, CORRECT)
        assert rep.validity_violations and rep.agreement_violations

    def test_byzantine_sender_waives_validity(self):
        bs = [(1, "a")]
        rep = check_srb(trace_of(bs, []), 0, CORRECT, sender_correct=False)
        assert rep.ok

    def test_truncated_run_waives_liveness(self):
        bs = [(1, "a")]
        rep = check_srb(trace_of(bs, [(0, 1, "a")]), 0, CORRECT,
                        expect_complete=False)
        assert rep.ok


class TestAgreement:
    def test_conflicting_values_flagged(self):
        bs = [(1, "a")]
        dv = [(0, 1, "a"), (1, 1, "b"), (2, 1, "a")]
        rep = check_srb(trace_of(bs, dv), 0, CORRECT, sender_correct=False,
                        expect_complete=False)
        assert rep.agreement_violations

    def test_relay_gap_flagged(self):
        bs = [(1, "a")]
        dv = [(0, 1, "a")]
        rep = check_srb(trace_of(bs, dv), 0, CORRECT, sender_correct=False)
        assert any("never by" in v for v in rep.agreement_violations)


class TestSequencing:
    def test_gap_flagged(self):
        bs = [(1, "a"), (2, "b")]
        dv = [(0, 2, "b")]  # delivered 2 without 1
        rep = check_srb(trace_of(bs, dv), 0, CORRECT, expect_complete=False)
        assert rep.sequencing_violations

    def test_out_of_order_flagged(self):
        bs = [(1, "a"), (2, "b")]
        dv = [(0, 2, "b"), (0, 1, "a")]
        rep = check_srb(trace_of(bs, dv), 0, CORRECT, expect_complete=False)
        assert rep.sequencing_violations

    def test_duplicate_seq_flagged(self):
        bs = [(1, "a")]
        dv = [(0, 1, "a"), (0, 1, "a")]
        rep = check_srb(trace_of(bs, dv), 0, CORRECT, expect_complete=False)
        assert rep.sequencing_violations


class TestIntegrity:
    def test_unbroadcast_value_flagged(self):
        bs = [(1, "a")]
        dv = [(0, 1, "forged")]
        rep = check_srb(trace_of(bs, dv), 0, CORRECT, expect_complete=False)
        assert rep.integrity_violations

    def test_byzantine_sender_integrity_checks_production(self):
        bs = [(1, "a"), (1, "b")]  # byzantine double-bcast records both
        dv = [(0, 1, "b")]
        rep = check_srb(trace_of(bs, dv), 0, CORRECT, sender_correct=False,
                        expect_complete=False)
        assert not rep.integrity_violations
        dv2 = [(0, 1, "never-produced")]
        rep2 = check_srb(trace_of(bs, dv2), 0, CORRECT, sender_correct=False,
                         expect_complete=False)
        assert rep2.integrity_violations


class TestReporting:
    def test_assert_ok_raises_with_summary(self):
        bs = [(1, "a")]
        rep = check_srb(trace_of(bs, []), 0, CORRECT)
        with pytest.raises(PropertyViolation, match="SRB"):
            rep.assert_ok()

    def test_all_violations_prefixed(self):
        bs = [(1, "a")]
        dv = [(0, 1, "forged")]
        rep = check_srb(trace_of(bs, dv), 0, CORRECT, expect_complete=False)
        assert all(":" in v for v in rep.all_violations())
