"""Tests for the trace store and indistinguishability views."""

from __future__ import annotations

from repro.sim.trace import Trace


def build_trace(events):
    t = Trace()
    for time, kind, pid, fields in events:
        t.record(time, kind, pid, **fields)
    return t


class TestQueries:
    def test_filter_by_kind_and_pid(self):
        t = build_trace([
            (1.0, "send", 0, {"dst": 1, "msg": "a"}),
            (2.0, "deliver", 1, {"src": 0, "msg": "a"}),
            (3.0, "send", 1, {"dst": 0, "msg": "b"}),
        ])
        assert len(t.events("send")) == 2
        assert len(t.events("send", pid=0)) == 1
        assert len(t.events(pid=1)) == 2

    def test_predicate_filter(self):
        t = build_trace([
            (1.0, "custom", 0, {"event": "x"}),
            (2.0, "custom", 0, {"event": "y"}),
        ])
        assert len(t.events("custom", predicate=lambda e: e.field("event") == "y")) == 1

    def test_decisions(self):
        t = build_trace([
            (1.0, "decide", 0, {"value": "v"}),
            (2.0, "decide", 1, {"value": "w"}),
        ])
        ds = t.decisions()
        assert [(d.pid, d.value) for d in ds] == [(0, "v"), (1, "w")]
        assert t.decision_of(1).value == "w"
        assert t.decision_of(5) is None

    def test_broadcast_deliveries(self):
        t = build_trace([
            (1.0, "bcast_deliver", 2, {"sender": 0, "seq": 1, "value": "m"}),
        ])
        d = t.broadcast_deliveries()[0]
        assert (d.receiver, d.sender, d.seq, d.value) == (2, 0, 1, "m")

    def test_dump_is_readable_and_truncates(self):
        t = build_trace([(float(i), "send", 0, {"dst": 1}) for i in range(10)])
        out = t.dump(limit=3)
        assert "7 more events" in out


class TestViews:
    def test_views_ignore_time(self):
        t1 = build_trace([(1.0, "deliver", 0, {"src": 1, "msg": "m"})])
        t2 = build_trace([(9.0, "deliver", 0, {"src": 1, "msg": "m"})])
        assert t1.local_view(0) == t2.local_view(0)

    def test_views_are_ordered(self):
        t1 = build_trace([
            (1.0, "deliver", 0, {"src": 1, "msg": "a"}),
            (2.0, "deliver", 0, {"src": 2, "msg": "b"}),
        ])
        t2 = build_trace([
            (1.0, "deliver", 0, {"src": 2, "msg": "b"}),
            (2.0, "deliver", 0, {"src": 1, "msg": "a"}),
        ])
        assert t1.local_view(0) != t2.local_view(0)

    def test_views_exclude_other_processes(self):
        t1 = build_trace([
            (1.0, "deliver", 0, {"src": 1, "msg": "m"}),
            (2.0, "deliver", 5, {"src": 1, "msg": "other"}),
        ])
        t2 = build_trace([(1.0, "deliver", 0, {"src": 1, "msg": "m"})])
        assert t1.local_view(0) == t2.local_view(0)

    def test_views_exclude_linearization_points(self):
        t1 = build_trace([
            (1.0, "op_invoke", 0, {"handle": 0, "object": "r", "op": "read", "args": ()}),
            (2.0, "op_linearize", 0, {"handle": 0, "object": "r", "op": "read", "ok": True}),
            (3.0, "op_respond", 0, {"handle": 0, "object": "r", "op": "read"}),
        ])
        t2 = build_trace([
            (1.0, "op_invoke", 0, {"handle": 0, "object": "r", "op": "read", "args": ()}),
            (3.0, "op_respond", 0, {"handle": 0, "object": "r", "op": "read"}),
        ])
        assert t1.local_view(0) == t2.local_view(0)

    def test_views_equal_and_differing(self):
        t1 = build_trace([(1.0, "deliver", 0, {"src": 1, "msg": "m"})])
        t2 = build_trace([(1.0, "deliver", 0, {"src": 1, "msg": "M"})])
        assert not t1.views_equal(t2, [0])
        assert t1.differing_views(t2, [0, 1]) == [0]
