"""Unit + property tests for the simulated signature scheme."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import Signature, SignatureScheme
from repro.errors import SignatureError


class TestSignVerify:
    def test_roundtrip(self, scheme4):
        signer = scheme4.signer(0)
        sig = signer.sign(("hello", 1))
        assert scheme4.verify(("hello", 1), sig)

    def test_wrong_value_rejected(self, scheme4):
        sig = scheme4.signer(0).sign(("hello", 1))
        assert not scheme4.verify(("hello", 2), sig)

    def test_wrong_signer_claim_rejected(self, scheme4):
        sig = scheme4.signer(0).sign("m")
        forged = Signature(signer=1, tag=sig.tag)
        assert not scheme4.verify("m", forged)

    def test_tag_tamper_rejected(self, scheme4):
        sig = scheme4.signer(0).sign("m")
        bad = Signature(signer=0, tag=bytes(sig.tag[:-1]) + bytes([sig.tag[-1] ^ 1]))
        assert not scheme4.verify("m", bad)

    def test_cross_scheme_rejected(self):
        a = SignatureScheme(2, seed=1)
        b = SignatureScheme(2, seed=2)
        sig = a.signer(0).sign("m")
        assert not b.verify("m", sig)

    def test_same_seed_schemes_compatible(self):
        a = SignatureScheme(2, seed=7)
        b = SignatureScheme(2, seed=7)
        sig = a.signer(0).sign("m")
        assert b.verify("m", sig)

    def test_non_signature_rejected(self, scheme4):
        assert not scheme4.verify("m", "not-a-signature")

    def test_unknown_signer_rejected(self, scheme4):
        sig = Signature(signer=99, tag=b"x" * 32)
        assert not scheme4.verify("m", sig)

    def test_unserializable_value_verify_false(self, scheme4):
        sig = scheme4.signer(0).sign("m")
        assert not scheme4.verify(object(), sig)


class TestCapabilityDiscipline:
    def test_signer_issued_once(self, scheme4):
        scheme4.signer(1)
        with pytest.raises(SignatureError):
            scheme4.signer(1)

    def test_out_of_range_signer(self, scheme4):
        with pytest.raises(SignatureError):
            scheme4.signer(4)

    def test_revoked_signer_refuses(self, scheme4):
        s = scheme4.signer(2)
        s.revoke()
        with pytest.raises(SignatureError):
            s.sign("m")

    def test_empty_scheme_rejected(self):
        with pytest.raises(SignatureError):
            SignatureScheme(0)


class TestVerifySignedPairs:
    def test_pair_shape(self, scheme4):
        s = scheme4.signer(0)
        pair = ("v", s.sign("v"))
        assert scheme4.verify_signed(pair)
        assert scheme4.verify_signed(pair, expected_signer=0)
        assert not scheme4.verify_signed(pair, expected_signer=1)

    def test_malformed_pairs(self, scheme4):
        assert not scheme4.verify_signed("junk")
        assert not scheme4.verify_signed(("v",))
        assert not scheme4.verify_signed(("v", "not-sig"))


class TestUnforgeabilityProperties:
    @given(st.binary(min_size=32, max_size=32))
    @settings(max_examples=100)
    def test_random_tags_never_verify(self, tag):
        scheme = SignatureScheme(2, seed=3)
        real = scheme._sign(0, "m")
        if tag == real.tag:
            return  # astronomically unlikely; not a forgery, it IS the tag
        assert not scheme.verify("m", Signature(signer=0, tag=tag))

    @given(st.integers(0, 3), st.text(max_size=16), st.text(max_size=16))
    @settings(max_examples=100)
    def test_signature_binds_value(self, pid, m1, m2):
        scheme = SignatureScheme(4, seed=5)
        sig = scheme._sign(pid, m1)
        assert scheme.verify(m1, sig)
        if m1 != m2:
            assert not scheme.verify(m2, sig)
