"""Tests for accrual failure detection and the recovery supervisor."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults.detector import (
    AccrualFailureDetector,
    HeartbeatProcess,
    RecoverySupervisor,
)
from repro.sim import ReliableAsynchronous, Simulation
from repro.sim.trace import CUSTOM


class TestAccrualFailureDetector:
    def test_silence_raises_phi_monotonically(self):
        fd = AccrualFailureDetector(min_samples=2)
        for t in (0.0, 1.0, 2.0, 3.0, 4.0):
            fd.heartbeat(1, t)
        assert fd.phi(1, 4.5) < fd.phi(1, 8.0) < fd.phi(1, 20.0)

    def test_regular_heartbeats_stay_unsuspected(self):
        fd = AccrualFailureDetector(threshold=3.0, min_samples=2)
        for t in range(50):
            fd.heartbeat(1, float(t))
        # right at the expected next arrival phi is ~0.3, far under threshold
        assert not fd.is_suspect(1, 50.0)

    def test_long_silence_crosses_threshold(self):
        fd = AccrualFailureDetector(threshold=3.0, min_samples=2)
        for t in range(10):
            fd.heartbeat(1, float(t))
        assert fd.is_suspect(1, 30.0)

    def test_unknown_or_young_peer_scores_zero(self):
        fd = AccrualFailureDetector(min_samples=3)
        assert fd.phi(9, 100.0) == 0.0
        fd.heartbeat(9, 0.0)
        fd.heartbeat(9, 1.0)
        assert fd.phi(9, 100.0) == 0.0  # 2 intervals < min_samples... still learning

    def test_jittery_peer_needs_longer_silence(self):
        steady = AccrualFailureDetector(min_samples=2)
        jittery = AccrualFailureDetector(min_samples=2)
        for i in range(40):
            steady.heartbeat(1, float(i))
            jittery.heartbeat(1, i + (0.4 if i % 2 else 0.0))
        assert jittery.phi(1, 41.5) < steady.phi(1, 41.5)

    def test_forget_resets_history(self):
        fd = AccrualFailureDetector(min_samples=2)
        for t in range(10):
            fd.heartbeat(1, float(t))
        fd.forget(1)
        assert fd.phi(1, 100.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AccrualFailureDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            AccrualFailureDetector(alpha=0.0)


class TestHeartbeatProcess:
    def _run(self, crash_pid=None, crash_at=None, restart_at=None, until=200.0):
        procs = [HeartbeatProcess(group=range(3), interval=2.0) for _ in range(3)]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.3), seed=11)
        if crash_pid is not None:
            sim.crash_at(crash_pid, crash_at)
            if restart_at is not None:
                sim.restart_at(
                    crash_pid, restart_at,
                    factory=lambda: HeartbeatProcess(group=range(3), interval=2.0),
                )
        sim.run(until=until)
        return sim, procs

    def test_healthy_group_never_suspects(self):
        sim, procs = self._run()
        assert all(p.suspect_events == 0 for p in procs)

    def test_crash_is_suspected_by_all_peers(self):
        sim, procs = self._run(crash_pid=2, crash_at=60.0)
        for p in (procs[0], procs[1]):
            assert 2 in p.suspected
            assert p.suspect_events >= 1
        suspects = list(sim.trace.events(CUSTOM, predicate=lambda e: e.field("event") == "suspect"))
        assert {e.pid for e in suspects} == {0, 1}
        assert all(e.field("peer") == 2 and e.time > 60.0 for e in suspects)

    def test_restart_triggers_restore(self):
        sim, procs = self._run(crash_pid=2, crash_at=60.0, restart_at=100.0)
        for p in (procs[0], procs[1]):
            assert 2 not in p.suspected
            assert p.restore_events >= 1
        restores = list(sim.trace.events(CUSTOM, predicate=lambda e: e.field("event") == "restore"))
        assert restores and all(e.field("peer") == 2 for e in restores)


class TestRecoverySupervisor:
    def _system(self, **kw):
        procs = [HeartbeatProcess(group=range(3), interval=2.0) for _ in range(3)]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.3), seed=5)
        sup = RecoverySupervisor(
            sim,
            factory=lambda pid: HeartbeatProcess(group=range(3), interval=2.0),
            **kw,
        )
        sim.attach_observer(sup)
        return sim, procs, sup

    def test_supervised_restart_revives_the_crashed_process(self):
        sim, procs, sup = self._system(restart_delay=15.0)
        sim.crash_at(1, 50.0)
        sim.run(until=200.0)
        assert sup.performed == 1
        assert 1 not in sim.crashed_pids
        assert sim.incarnation_of(1) == 1

    def test_stale_entry_suppressed_when_already_restarted(self):
        sim, procs, sup = self._system(restart_delay=30.0)
        sim.crash_at(1, 50.0)
        # the chaos script got there first
        sim.restart_at(1, 60.0, factory=lambda: HeartbeatProcess(group=range(3), interval=2.0))
        sim.run(until=200.0)
        assert sup.performed == 0
        assert sup.suppressed_stale == 1
        assert sim.incarnation_of(1) == 1  # exactly one reboot, not two

    def test_crash_storm_each_crash_gets_one_restart(self):
        sim, procs, sup = self._system(restart_delay=5.0)
        for k in range(4):
            sim.crash_at(1, 20.0 + 30.0 * k)
        sim.run(until=250.0)
        assert sup.performed == 4
        assert sim.incarnation_of(1) == 4
        assert 1 not in sim.crashed_pids

    def test_max_restarts_cap(self):
        sim, procs, sup = self._system(restart_delay=5.0, max_restarts=2)
        for k in range(4):
            sim.crash_at(1, 20.0 + 30.0 * k)
        sim.run(until=250.0)
        assert sup.performed == 2
        assert 1 in sim.crashed_pids  # third crash stayed down

    def test_scoped_pids(self):
        sim, procs, sup = self._system(restart_delay=5.0, pids=[0])
        sim.crash_at(1, 50.0)
        sim.run(until=200.0)
        assert sup.performed == 0
        assert 1 in sim.crashed_pids
