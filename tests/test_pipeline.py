"""Pipelined replication core: dedup, batch policies, windows, open loop.

Covers the throughput stack end to end: the bounded
:class:`~repro.consensus.dedup.ClientDedup` unit behaviour, the batch
sizing policies, multi-outstanding client semantics (including typed
abandonment under a dead cluster), the open-loop load harness with its
replay witness, the pipelined chaos configuration, and the 10^5-request
memory-bound soak (marked ``slow``).
"""

from __future__ import annotations

import pytest

from repro.consensus import build_minbft_system, check_replication
from repro.consensus.batching import (
    AdaptiveBatchPolicy,
    FixedBatchPolicy,
    make_batch_policy,
)
from repro.consensus.dedup import MISSING, ClientDedup
from repro.errors import ConfigurationError
from repro.faults.chaos import assert_all_ok, chaos_sweep, run_chaos
from repro.faults.timeouts import RetryBudget
from repro.sim.trace import CUSTOM
from repro.workloads import run_pipeline_load, split_arrivals
from repro.workloads.generator import open_loop_arrivals


# ---------------------------------------------------------------------------
# ClientDedup
# ---------------------------------------------------------------------------


class TestClientDedup:
    def test_in_order_execution_stays_constant_size(self):
        d = ClientDedup(reply_window=4)
        for i in range(1, 101):
            d.record(7, i, f"r{i}")
        assert d.executed(7, 50) and d.executed(7, 100)
        assert not d.executed(7, 101)
        # watermark + bounded reply cache only: no per-request growth
        assert d.size() == 1 + 4

    def test_out_of_order_gap_fill(self):
        d = ClientDedup()
        d.record(1, 3, "c")
        assert d.executed(1, 3) and not d.executed(1, 1)
        d.record(1, 1, "a")
        d.record(1, 2, "b")
        # the gap filled: watermark advanced, out-of-order window drained
        assert all(d.executed(1, i) for i in (1, 2, 3))
        assert d.size() == 1 + 3

    def test_reply_eviction_returns_missing(self):
        d = ClientDedup(reply_window=2)
        for i in (1, 2, 3):
            d.record(1, i, f"r{i}")
        assert d.reply(1, 1) is MISSING  # evicted
        assert d.reply(1, 3) == "r3"
        assert d.executed(1, 1)  # executed-ness survives eviction

    def test_gap_limit_force_advances_watermark(self):
        d = ClientDedup(gap_limit=4)
        # req 1 abandoned: execute 2..8, overflowing the out-of-order window
        for i in range(2, 9):
            d.record(1, i, f"r{i}")
        # the watermark force-advanced over the abandoned gap
        assert d.executed(1, 1)
        assert d.size() <= 1 + 4 + d.reply_window

    def test_snapshot_restore_roundtrip(self):
        d = ClientDedup(reply_window=3)
        d.record(4, 2, "x")
        d.record(4, 5, "y")
        d.record(9, 1, "z")
        image = d.snapshot()
        fresh = ClientDedup(reply_window=3)
        fresh.restore(image)
        assert fresh.snapshot() == image
        assert fresh.executed(4, 5) and not fresh.executed(4, 3)
        assert fresh.latest(9) == (1, "z")


# ---------------------------------------------------------------------------
# Batch policies
# ---------------------------------------------------------------------------


class TestBatchPolicies:
    def test_fixed_policy_never_size_triggers(self):
        p = FixedBatchPolicy(delay=0.5)
        assert p.cap() is None
        assert p.deadline() == 0.5

    def test_resolver(self):
        assert isinstance(make_batch_policy(None, 0.3), FixedBatchPolicy)
        assert make_batch_policy("fixed", 0.3).delay == 0.3
        assert isinstance(make_batch_policy("adaptive"), AdaptiveBatchPolicy)
        custom = AdaptiveBatchPolicy(max_cap=32)
        assert make_batch_policy(custom) is custom
        assert isinstance(
            make_batch_policy(lambda: FixedBatchPolicy(0.1)), FixedBatchPolicy
        )
        with pytest.raises(ConfigurationError):
            make_batch_policy("bogus")

    def test_adaptive_cap_tracks_arrival_rate(self):
        p = AdaptiveBatchPolicy(target_delay=0.1)
        assert p.cap() == 1  # no estimate yet: light-load fast path
        # 100 req/s arrivals with 0.5s commit latency -> cap ~ 50
        t = 0.0
        for _ in range(50):
            p.note_arrival(t)
            t += 0.01
        p.note_commit(0.5, 10)
        assert p.cap() > 10
        # load vanishes: the EWMA decays the cap back down
        for _ in range(50):
            p.note_arrival(t)
            t += 10.0
        assert p.cap() < 5

    def test_adaptive_cap_clamped(self):
        p = AdaptiveBatchPolicy(min_cap=2, max_cap=8)
        assert p.cap() == 2
        t = 0.0
        for _ in range(100):
            p.note_arrival(t)
            t += 1e-6  # absurd rate
        p.note_commit(10.0, 1)
        assert p.cap() == 8


# ---------------------------------------------------------------------------
# Multi-outstanding clients
# ---------------------------------------------------------------------------


def _max_inflight(sim, client_pid):
    """Peak concurrent in-flight requests, reconstructed from the trace."""
    inflight = peak = 0
    for ev in sim.trace:
        if ev.kind != CUSTOM or ev.pid != client_pid:
            continue
        tag = ev.field("event")
        if tag == "request_sent":
            inflight += 1
            peak = max(peak, inflight)
        elif tag in ("request_done", "request_failed"):
            inflight -= 1
    return peak


class TestMultiOutstandingClient:
    def test_keeps_multiple_requests_in_flight(self):
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=8, seed=11,
            client_options=dict(max_outstanding=4),
            replica_options=dict(window_size=8),
        )
        sim.run(until=4000.0)
        n = len(reps)
        check_replication(
            sim.trace, range(n), expected_ops={n: 8}
        ).assert_ok()
        assert len(clients[0].results) == 8
        assert _max_inflight(sim, n) > 1

    def test_completions_out_of_submission_order_are_safe(self):
        """The dedup layer, not a latest-req_id cache, answers retransmits."""
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=2, ops_per_client=10, seed=12, app="bank",
            client_options=dict(max_outstanding=5),
            replica_options=dict(window_size=16, batching=True,
                                 batch_policy="adaptive"),
        )
        sim.run(until=4000.0)
        n = len(reps)
        check_replication(
            sim.trace, range(n), expected_ops={n: 10, n + 1: 10}
        ).assert_ok()
        assert reps[0].app.digest() == reps[1].app.digest() == reps[2].app.digest()

    def test_retry_survives_primary_crash(self):
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=6, seed=13,
            # retry fires before the backups' 20s view-change trigger, so
            # the in-flight requests each retransmit at least once
            req_timeout=20.0, retry_timeout=8.0,
            client_options=dict(max_outstanding=3),
            replica_options=dict(window_size=8, checkpoint_interval=4),
        )
        sim.crash_at(0, 1.0)
        sim.run(until=12000.0)
        n = len(reps)
        check_replication(sim.trace, [1, 2], expected_ops={n: 6}).assert_ok()
        assert len(clients[0].results) == 6
        assert clients[0].retransmissions > 0

    def test_abandon_per_request_when_cluster_dead(self):
        """Budget exhaustion abandons each in-flight request with a typed
        failure and a ``request_failed`` trace event — no hang, no storm."""
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=5, seed=14,
            retry_timeout=10.0,
            client_options=dict(
                max_outstanding=3,
                retry_budget=lambda: RetryBudget(ratio=0.0, min_reserve=2.0),
            ),
        )
        # no quorum anywhere: every request must eventually be abandoned
        for pid in range(3):
            sim.crash_at(pid, 0.5)
        sim.run(until=2000.0)
        client = clients[0]
        assert client.done
        assert len(client.failures) == 5
        assert len(client.results) == 0
        failed = [
            ev for ev in sim.trace
            if ev.kind == CUSTOM and ev.field("event") == "request_failed"
        ]
        assert len(failed) == 5
        assert all(ev.field("reason") == "retries_exhausted" for ev in failed)

    def test_open_loop_backlog_accounting(self):
        arrivals = open_loop_arrivals(30, seed=3, rate=100.0)
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=2, seed=15, app="kv",
            client_arrivals=split_arrivals(arrivals, 2),
            client_options=dict(max_outstanding=2),
            replica_options=dict(window_size=8, batching=True,
                                 batch_policy="adaptive"),
        )
        sim.run_to_quiescence(max_events=100_000)
        assert sum(len(c.results) for c in clients) == 30
        # 100 req/s into 2x2 outstanding slots must have queued
        assert max(c.peak_backlog for c in clients) > 0
        assert all(c.done for c in clients)


# ---------------------------------------------------------------------------
# Open-loop load harness
# ---------------------------------------------------------------------------


class TestPipelineLoad:
    def test_adaptive_window_beats_legacy_baseline_3x(self):
        """The headline claim: pipeline + adaptive batching sustains >= 3x
        the committed throughput of the one-outstanding fixed-delay setup."""
        pipelined = run_pipeline_load(
            protocol="minbft", n_requests=300, rate=50.0, seed=0,
            window_size=16, batching="adaptive", max_outstanding=8,
        )
        baseline = run_pipeline_load(
            protocol="minbft", n_requests=300, rate=50.0, seed=0,
            window_size=0, batching="fixed", max_outstanding=1,
        )
        for r in (pipelined, baseline):
            assert r.safety_ok and r.liveness_ok, r.violations
            assert r.completed == 300 and r.failed == 0
        assert pipelined.throughput >= 3.0 * baseline.throughput
        assert pipelined.p99 < baseline.p99

    def test_replay_is_bit_identical(self):
        a = run_pipeline_load(n_requests=120, rate=40.0, seed=5)
        b = run_pipeline_load(n_requests=120, rate=40.0, seed=5)
        assert a.order_hash == b.order_hash
        assert a.consensus == b.consensus
        c = run_pipeline_load(n_requests=120, rate=40.0, seed=6)
        assert c.order_hash != a.order_hash

    def test_window_stall_counters(self):
        """A tiny window under offered overload must stall and resume —
        visible in the counters, invisible in the committed output."""
        r = run_pipeline_load(
            n_requests=200, rate=100.0, seed=2,
            window_size=2, batching="adaptive", max_outstanding=8,
            checkpoint_interval=4,
        )
        assert r.completed == 200 and r.failed == 0
        assert r.safety_ok and r.liveness_ok, r.violations
        assert r.consensus["proposal_stalls"] > 0
        assert r.consensus["window_peak"] <= 2
        assert r.consensus["batches_flushed"] > 0

    def test_counters_flow_through_runstats(self):
        r = run_pipeline_load(n_requests=100, rate=30.0, seed=4)
        stats = r.consensus
        # counters are summed key-wise across the 3 replicas; the batch
        # histogram only ever increments on the proposing primary, so its
        # mass is the per-replica request count
        assert stats["commits_executed"] == 3 * 100
        assert sum(
            size * count for size, count in stats["batch_size_hist"].items()
        ) == 100
        assert stats["window_samples"] == stats["batches_flushed"]
        assert stats["window_peak"] >= 1

    def test_pbft_load_cell(self):
        r = run_pipeline_load(
            protocol="pbft", n_requests=150, rate=40.0, seed=1,
            window_size=16, batching="adaptive", max_outstanding=8,
        )
        assert r.completed == 150 and r.failed == 0
        assert r.safety_ok and r.liveness_ok, r.violations
        assert r.consensus["batches_flushed"] > 0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            run_pipeline_load(protocol="raft")


# ---------------------------------------------------------------------------
# Pipelined chaos
# ---------------------------------------------------------------------------


class TestPipelinedChaos:
    def test_single_pipelined_run_reports_counters(self):
        r = run_chaos("minbft-pipelined", seed=0, horizon=300.0,
                      ops_per_client=6)
        assert r.ok, r.violations + r.liveness_violations
        assert r.stats["consensus"]["commits_executed"] > 0
        assert r.stats["consensus"]["batches_flushed"] > 0

    def test_restarted_replica_keeps_pipeline_config(self):
        # seed 0's schedule crashes and restarts a replica (asserted so a
        # schedule change breaks the test loudly, not silently)
        r = run_chaos("minbft-pipelined", seed=0, horizon=300.0,
                      ops_per_client=6)
        assert r.stats["restarts"] >= 1
        assert r.ok, r.violations + r.liveness_violations

    @pytest.mark.slow
    def test_pipelined_chaos_sweep(self):
        results = chaos_sweep(
            protocols=["minbft-pipelined"], seeds=range(8),
            horizon=400.0, ops_per_client=6,
        )
        assert_all_ok(results)
        assert all("consensus" in r.stats for r in results)


class TestAttacksUnderPipeline:
    """The attack campaign composed with the full pipeline stack.

    Batched proposals widen the attack surface — an equivocated slot now
    carries a whole batch, and replayed UIs race a 16-deep window — but
    with intact hardware the outcome must not change: safe, live, and
    conviction-free.
    """

    @pytest.mark.parametrize(
        "attack", ["equivocate-prepare", "ui-replay", "selective-delivery"]
    )
    def test_attack_cell_green_when_pipelined(self, attack):
        from repro.faults.chaos import run_attack

        r = run_attack(attack, seed=0, pipelined=True, ops_per_client=6)
        byz = r.stats["byzantine"]
        assert r.ok, r.violations + r.liveness_violations
        assert byz["strikes"] > 0, f"{attack} never fired under pipelining"
        assert byz["forensics"]["convicted"] == []
        # the pipeline genuinely ran: batches flushed, not 1-op slots only
        assert r.stats["consensus"]["batches_flushed"] > 0


# ---------------------------------------------------------------------------
# Soak
# ---------------------------------------------------------------------------


class TestSoak:
    @pytest.mark.slow
    def test_100k_request_soak_memory_bounded(self):
        """10^5 open-loop requests; replica slot state stays O(window +
        checkpoint interval + clients), nowhere near O(total requests)."""
        r = run_pipeline_load(
            protocol="minbft", n_requests=100_000, rate=400.0, seed=7,
            n_clients=8, window_size=64, max_outstanding=16,
            checkpoint_interval=16, trace_retention=50_000,
        )
        assert r.completed == 100_000 and r.failed == 0
        assert r.safety_ok and r.liveness_ok, r.violations[:5]
        # the pre-pipeline replicas kept one executed-key per request:
        # >= 100_000 entries. The bounded core stays three orders below.
        assert r.peak_slot_state < 2_000
