"""Tests for MinBFT checkpointing, log garbage collection, state transfer."""

from __future__ import annotations

import pytest

from repro.consensus import build_minbft_system, check_replication
from repro.consensus.minbft import MinBFTReplica, PREPARE, USIG_WRAP
from repro.consensus.usig import USIG, USIGVerifier
from repro.consensus.viewchange import validate_checkpoint_cert
from repro.hardware.trinc import TrincAuthority


def build(f=1, ops=8, interval=2, seed=1, factory=None, **kw):
    return build_minbft_system(
        f=f, n_clients=1, ops_per_client=ops, seed=seed,
        replica_factory=factory,
        req_timeout=kw.pop("req_timeout", 20.0),
        retry_timeout=kw.pop("retry_timeout", 60.0),
        **kw,
    )


def with_checkpoints(interval):
    def factory(pid, **kwargs):
        return MinBFTReplica(checkpoint_interval=interval, **kwargs)
    return factory


class TestCheckpointLifecycle:
    def test_stable_checkpoints_form_and_gc_runs(self):
        sim, reps, clients = build(ops=8, seed=1, factory=with_checkpoints(2))
        sim.run(until=4000.0)
        n = len(reps)
        check_replication(sim.trace, range(n), expected_ops={n: 8}).assert_ok()
        for r in reps:
            assert r.stable_seq >= 6
            assert r.log_entries_gced > 0
            # the live log only covers counters after the checkpoint
            assert all(ui.counter > r._log_base for _m, ui in r.sent_log)

    def test_disabled_by_default(self):
        sim, reps, clients = build(ops=4, seed=2)
        sim.run(until=2000.0)
        assert all(r.stable_seq == 0 and r.log_entries_gced == 0 for r in reps)

    def test_view_change_after_gc(self):
        """A primary crash after logs were truncated: the view change must
        succeed from checkpoint-certified partial logs."""
        sim, reps, clients = build(ops=10, seed=3, factory=with_checkpoints(2))
        sim.crash_at(0, 4.0)
        sim.run(until=8000.0)
        n = len(reps)
        rep = check_replication(sim.trace, [1, 2], expected_ops={n: 10})
        rep.assert_ok()
        assert all(r.view >= 1 for r in reps[1:])
        assert any(r.log_entries_gced > 0 for r in reps[1:])

    def test_checkpoint_digests_match_across_replicas(self):
        sim, reps, clients = build(ops=6, seed=4, factory=with_checkpoints(3))
        sim.run(until=3000.0)
        stables = [
            ev for ev in sim.trace.events("custom")
            if ev.field("event") == "checkpoint_stable"
        ]
        assert stables  # every replica stabilized at least one checkpoint
        assert {ev.pid for ev in stables} == {0, 1, 2}


class TestCertificateValidation:
    @pytest.fixture
    def env(self):
        auth = TrincAuthority(3, seed=7)
        usigs = {p: USIG(auth.trinket(p)) for p in range(3)}
        return usigs, USIGVerifier(auth)

    def make_cert(self, usigs, seq=2, digest=b"d" * 32, replicas=(0, 1)):
        cert = []
        for r in replicas:
            msg = ("CHECKPOINT", seq, digest)
            cert.append((r, msg, usigs[r].create_ui(msg)))
        return tuple(cert)

    def test_valid_cert(self, env):
        usigs, verifier = env
        cert = self.make_cert(usigs)
        checked = validate_checkpoint_cert(verifier, cert, f=1)
        assert checked is not None
        seq, digest, counters = checked
        assert seq == 2 and set(counters) == {0, 1}

    def test_too_few_attestations(self, env):
        usigs, verifier = env
        cert = self.make_cert(usigs, replicas=(0,))
        assert validate_checkpoint_cert(verifier, cert, f=1) is None

    def test_mismatched_digests(self, env):
        usigs, verifier = env
        c0 = self.make_cert(usigs, digest=b"a" * 32, replicas=(0,))
        c1 = self.make_cert(usigs, digest=b"b" * 32, replicas=(1,))
        assert validate_checkpoint_cert(verifier, c0 + c1, f=1) is None

    def test_duplicate_replica_rejected(self, env):
        usigs, verifier = env
        msg = ("CHECKPOINT", 2, b"d" * 32)
        u1 = usigs[0].create_ui(msg)
        u2 = usigs[0].create_ui(msg)
        cert = ((0, msg, u1), (0, msg, u2))
        assert validate_checkpoint_cert(verifier, cert, f=1) is None

    def test_forged_ui_rejected(self, env):
        usigs, verifier = env
        cert = self.make_cert(usigs, replicas=(0, 1))
        # swap replica 1's message content
        r, msg, ui = cert[1]
        forged = (cert[0], (r, ("CHECKPOINT", 99, msg[2]), ui))
        assert validate_checkpoint_cert(verifier, forged, f=1) is None


class SelectiveGapPrimary(MinBFTReplica):
    """Byzantine primary: its first PREPARE never reaches the victim,
    creating a permanent UI gap in the victim's view of its stream."""

    VICTIM = 2

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._gapped = False

    def _usig_broadcast(self, message):
        ui = self.usig.create_ui(message)
        self.sent_log.append((message, ui))
        skip = None
        if not self._gapped and message[0] == PREPARE:
            self._gapped = True
            skip = self.VICTIM
        for dst in range(self.ctx.n):
            if dst == skip:
                continue
            self.ctx.send(dst, (USIG_WRAP, message, ui))


class TestEmbeddedVoteHealing:
    def test_gapped_replica_heals_from_commits(self):
        """A Byzantine primary withholds a PREPARE counter from the victim
        forever, freezing the primary's stream there. The victim must still
        make progress: every valid COMMIT embeds the primary's prepare UI,
        which counts as the primary's vote — so correct replicas' COMMITs
        alone reconstruct certificates."""

        def factory(pid, **kwargs):
            if pid == 0:
                return SelectiveGapPrimary(checkpoint_interval=2, **kwargs)
            return MinBFTReplica(checkpoint_interval=2, **kwargs)

        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=6, seed=5,
            replica_factory=factory, req_timeout=20.0, retry_timeout=45.0,
        )
        sim.declare_byzantine(0)
        sim.run(until=4000.0)
        n = len(reps)
        rep = check_replication(sim.trace, [1, 2], expected_ops={n: 6})
        rep.assert_ok()
        # the victim executed everything despite the frozen primary stream
        assert reps[2].commits_executed == 6
        assert reps[1].app.digest() == reps[2].app.digest()


class TestStateTransfer:
    def test_starved_replica_fast_forwards_via_checkpoint(self):
        """f = 2: the victim's view of the primary stream is gapped
        (Byzantine primary), so it can never self-vote on the old slots; at
        heal time it drains the new primary's stream first, whose COMMITs
        give only 2 < f+1 votes per old slot — replay is impossible when
        the NEW-VIEW arrives, so it must install the checkpoint state."""
        from repro.sim import ScriptedAdversary
        from repro.sim.adversary import LinkRule

        victim = 4

        class GapPrimary(SelectiveGapPrimary):
            VICTIM = victim

        def factory(pid, **kwargs):
            if pid == 0:
                return GapPrimary(checkpoint_interval=2, **kwargs)
            return MinBFTReplica(checkpoint_interval=2, **kwargs)

        adv = ScriptedAdversary(base_delay=0.05)
        for r in range(4):
            # pre-t=30 replica->victim traffic arrives at 200 + 5r: stream 1
            # (the future primary) drains first, before streams 2 and 3
            adv.add_rule(LinkRule(
                [r], [victim],
                (lambda s, d, m, now, r=r: (200.0 + 5 * r) - now),
                start=0.0, end=30.0,
            ))

        sim, reps, clients = build_minbft_system(
            f=2, n_clients=1, ops_per_client=10, seed=6,
            adversary=adv, replica_factory=factory,
            req_timeout=20.0, retry_timeout=45.0,
        )
        sim.declare_byzantine(0)
        sim.crash_at(0, 0.5)  # mid-workload: forces the view change
        sim.run(until=30000.0)

        n = len(reps)
        rep = check_replication(sim.trace, [1, 2, 3, victim],
                                expected_ops={n: 10})
        rep.assert_ok()
        transfers = [
            ev for ev in sim.trace.events("custom", pid=victim)
            if ev.field("event") == "state_transfer"
        ]
        assert transfers, "victim should have fast-forwarded via checkpoint"
        assert transfers[0].field("stable_seq") >= 2
        digests = {reps[p].app.digest() for p in (1, 2, 3, victim)}
        assert len(digests) == 1
