"""Tests for run-metrics collection and misc shared types."""

from __future__ import annotations

import pytest

from repro.analysis import RunMetrics, collect_metrics
from repro.sim import Process, ReliableAsynchronous, Simulation
from repro.types import Decision, Delivery, Message, RoundMessage


class TestRunMetrics:
    def test_throughput_and_messages_per_request(self):
        m = RunMetrics(messages_sent=100, messages_delivered=95, sm_ops=10,
                       virtual_duration=50.0, requests_completed=25)
        assert m.throughput == 0.5
        assert m.messages_per_request == 4.0

    def test_zero_guards(self):
        m = RunMetrics(messages_sent=10, messages_delivered=10, sm_ops=0,
                       virtual_duration=0.0, requests_completed=0)
        assert m.throughput == 0.0
        assert m.messages_per_request == float("inf")

    def test_collect_from_simulation(self):
        class Chatter(Process):
            def on_start(self):
                self.ctx.broadcast(("HI",), include_self=False)

        sim = Simulation([Chatter(), Chatter()],
                         ReliableAsynchronous(0.1, 0.2), seed=1)
        sim.run_to_quiescence()
        m = collect_metrics(sim, requests_completed=2)
        assert m.messages_sent == 2
        assert m.messages_delivered == 2
        assert m.virtual_duration > 0
        assert m.requests_completed == 2


class TestSharedTypes:
    def test_message_repr(self):
        assert repr(Message("PING", 7)) == "Message('PING', 7)"

    def test_message_immutable(self):
        msg = Message("PING", 7)
        with pytest.raises(AttributeError):
            msg.kind = "PONG"

    def test_round_message_fields(self):
        rm = RoundMessage(round=3, payload=("x",))
        assert rm.round == 3 and rm.payload == ("x",)

    def test_delivery_and_decision_are_value_types(self):
        assert Delivery(1, 0, 2, "v", 1.0) == Delivery(1, 0, 2, "v", 1.0)
        assert Decision(0, "v", 1.0) == Decision(0, "v", 1.0)
        assert Decision(0, "v", 1.0) != Decision(0, "w", 1.0)
