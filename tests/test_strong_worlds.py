"""Tests for the strong-validity upper separation (uni ⊀ synchrony)."""

from __future__ import annotations

import pytest

from repro.agreement import run_strong_validity_impossibility
from repro.errors import PropertyViolation


class TestStrongValidityWorlds:
    def test_demonstration_holds(self):
        out = run_strong_validity_impossibility(seed=0)
        out.assert_holds()

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_deterministic_across_seeds(self, seed):
        out = run_strong_validity_impossibility(seed=seed)
        out.assert_holds()

    def test_forced_world_decisions(self):
        out = run_strong_validity_impossibility(seed=4)
        # world 1: correct {p0, p2} share input 0 -> both commit 0
        assert out.world1.commits == {0: 0, 2: 0}
        # world 2: correct {p1, p2} share input 1 -> both commit 1
        assert out.world2.commits == {1: 1, 2: 1}

    def test_world3_is_the_contradiction(self):
        out = run_strong_validity_impossibility(seed=5)
        assert out.world3.commits[0] == 0 and out.world3.commits[1] == 1
        assert out.world3.agreement_violations

    def test_world3_satisfies_unidirectionality(self):
        """The violation is NOT an artifact of breaking the round contract."""
        out = run_strong_validity_impossibility(seed=6)
        assert out.directionality3.is_unidirectional
        assert not out.directionality3.is_bidirectional  # p0->p1 withheld

    def test_indistinguishability(self):
        out = run_strong_validity_impossibility(seed=7)
        assert out.p0_view_matches_w1 and out.p1_view_matches_w2


class TestContrastWithSynchrony:
    def test_same_problem_solved_under_lockstep(self):
        """Bidirectional rounds solve what unidirectional cannot — the pair
        of results is the top edge of the lattice."""
        from repro.agreement import STRONG, build_strong_agreement_system, check_agreement

        sim, procs = build_strong_agreement_system(3, 1, [0, 1, 0], seed=8)
        sim.declare_byzantine(1)
        sim.crash(1)  # worst correct-set shape: {p0, p2} share input 0
        sim.run(until=60.0)
        rep = check_agreement(sim.trace, STRONG, {0: 0, 1: 1, 2: 0},
                              [0, 2], all_correct=False)
        rep.assert_ok()
        assert all(v == 0 for v in rep.commits.values())
