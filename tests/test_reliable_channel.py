"""Tests for the retransmission layer (repro.faults.channel)."""

from __future__ import annotations

import pytest

from repro.core import build_mp_srb_system, check_srb
from repro.errors import ConfigurationError
from repro.faults import (
    AdaptiveTimeout,
    ChaosAdversary,
    LossyAsynchronous,
    ReliableChannel,
    ReliableProcess,
    wrap_reliable,
)
from repro.faults.channel import RETX_TAG, _DedupWindow
from repro.sim import (
    DuplicatingAsynchronous,
    Process,
    ReliableAsynchronous,
    Simulation,
)


class Chatter(Process):
    """Sends a numbered message to every peer at start; collects receipts."""

    def __init__(self, n_messages: int = 1):
        super().__init__()
        self.n_messages = n_messages
        self.received: list[tuple[int, object]] = []

    def on_start(self):
        for i in range(self.n_messages):
            self.ctx.broadcast(("chat", self.pid, i), include_self=False)

    def on_message(self, src, msg):
        self.received.append((src, msg))


def build(n, adversary, seed, n_messages=1, **channel_kwargs):
    inner = [Chatter(n_messages) for _ in range(n)]
    sim = Simulation(wrap_reliable(inner, **channel_kwargs), adversary, seed=seed)
    return sim, inner


def channel_of(sim, pid) -> ReliableChannel:
    return sim.processes[pid].channel


class TestReliableDelivery:
    def test_lossless_delivers_once_no_retransmit(self):
        sim, inner = build(3, ReliableAsynchronous(0.1, 0.5), seed=1)
        sim.run_to_quiescence()
        for p in inner:
            assert sorted(m for _, m in p.received) == sorted(
                ("chat", q, 0) for q in range(3) if q != p.pid
            )
        for pid in range(3):
            ch = channel_of(sim, pid)
            assert ch.retransmissions == 0
            assert ch.acked == ch.sent == 2
            assert ch.in_flight == 0

    def test_heavy_loss_still_delivers_exactly_once(self):
        sim, inner = build(
            3, LossyAsynchronous(drop_probability=0.6, min_delay=0.05,
                                 max_delay=0.3),
            seed=2, n_messages=3, base_timeout=1.0,
        )
        sim.run(until=400.0)
        for p in inner:
            got = sorted(m for _, m in p.received)
            assert got == sorted(
                ("chat", q, i) for q in range(3) if q != p.pid for i in range(3)
            )
        assert sum(channel_of(sim, pid).retransmissions for pid in range(3)) > 0
        assert all(channel_of(sim, pid).gave_up == 0 for pid in range(3))

    def test_network_duplication_suppressed(self):
        sim, inner = build(
            3, DuplicatingAsynchronous(dup_probability=1.0, max_copies=3), seed=3
        )
        sim.run_to_quiescence()
        for p in inner:
            assert len(p.received) == 2  # one per peer, duplicates suppressed
        assert sum(
            channel_of(sim, pid).duplicates_suppressed for pid in range(3)
        ) > 0

    def test_chaos_composite_faults(self):
        sim, inner = build(
            4, ChaosAdversary(n=4, active_until=60.0), seed=4, n_messages=4,
        )
        sim.run(until=300.0)
        for p in inner:
            got = sorted(m for _, m in p.received)
            assert got == sorted(
                ("chat", q, i) for q in range(4) if q != p.pid for i in range(4)
            )


class TestGiveUp:
    def test_give_up_after_max_retries(self):
        hook_calls = []
        inner = [Chatter(), Chatter()]
        wrapped = [
            ReliableProcess(
                p, base_timeout=0.5, max_retries=3,
                give_up=lambda dst, payload, attempts: hook_calls.append(
                    (dst, payload, attempts)
                ),
            )
            for p in inner
        ]
        sim = Simulation(
            wrapped, LossyAsynchronous(drop_probability=1.0), seed=5
        )
        sim.run(until=200.0)
        assert inner[0].received == [] and inner[1].received == []
        assert sorted(hook_calls) == [(0, ("chat", 1, 0), 4), (1, ("chat", 0, 0), 4)]
        assert channel_of(sim, 0).gave_up == 1
        give_ups = [
            ev for ev in sim.trace.events("custom")
            if ev.field("event") == "rc_give_up"
        ]
        assert len(give_ups) == 2

    def test_retransmission_backoff_grows(self):
        inner = [Chatter(), Chatter()]
        wrapped = [
            ReliableProcess(p, base_timeout=1.0, backoff=2.0, jitter=0.0,
                            max_retries=4)
            for p in inner
        ]
        sim = Simulation(wrapped, LossyAsynchronous(drop_probability=1.0), seed=6)
        sim.run(until=200.0)
        sends = [
            ev.time for ev in sim.trace.events("send", pid=0)
            if ev.field("msg")[0] == "__rc_data__"
        ]
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        assert gaps == sorted(gaps)
        assert gaps == pytest.approx([1.0, 2.0, 4.0, 8.0])


class TestInterop:
    def test_unframed_messages_pass_through(self):
        class RawSender(Process):
            def __init__(self):
                super().__init__()
                self.received = []

            def on_start(self):
                self.ctx.send(1, ("raw", 99))

            def on_message(self, src, msg):
                self.received.append(msg)

        inner = Chatter()
        sim = Simulation(
            [RawSender(), ReliableProcess(inner)],
            ReliableAsynchronous(0.1, 0.2),
            seed=7,
        )
        sim.run(until=50.0)
        assert (0, ("raw", 99)) in inner.received

    def test_inner_timers_still_fire(self):
        class TimerUser(Process):
            def __init__(self):
                super().__init__()
                self.fired = []

            def on_start(self):
                self.ctx.set_timer(1.0, "tick")

            def on_timer(self, tag):
                self.fired.append((self.ctx.now, tag))

        inner = TimerUser()
        sim = Simulation(
            [ReliableProcess(inner), ReliableProcess(Chatter())],
            ReliableAsynchronous(0.1, 0.2),
            seed=8,
        )
        sim.run_to_quiescence()
        assert inner.fired == [(1.0, "tick")]

    def test_crashed_host_sends_nothing(self):
        class LateChatter(Chatter):
            def on_start(self):
                self.ctx.set_timer(10.0, "go")

            def on_timer(self, tag):
                super().on_start()  # broadcast now

        inner = [LateChatter(), LateChatter()]
        sim = Simulation(
            wrap_reliable(inner, max_retries=3), ReliableAsynchronous(0.5, 0.9),
            seed=9,
        )
        sim.crash_at(0, 5.0)
        sim.run_to_quiescence()
        assert inner[1].received == []  # pid 0 crashed before its send
        assert inner[0].received == []  # deliveries to a crashed host drop
        assert channel_of(sim, 1).gave_up == 1  # retries at the dead peer end


class TestChannelConfig:
    def test_invalid_parameters_rejected(self):
        sim, _ = build(2, ReliableAsynchronous(), seed=0)
        ctx = sim.processes[0].channel.ctx
        with pytest.raises(ConfigurationError):
            ReliableChannel(ctx, base_timeout=0.0)
        with pytest.raises(ConfigurationError):
            ReliableChannel(ctx, base_timeout=5.0, max_timeout=1.0)
        with pytest.raises(ConfigurationError):
            ReliableChannel(ctx, backoff=0.5)
        with pytest.raises(ConfigurationError):
            ReliableChannel(ctx, jitter=2.0)
        with pytest.raises(ConfigurationError):
            ReliableChannel(ctx, max_retries=-1)


class TestDedupWindow:
    def test_in_order_stream_keeps_only_the_watermark(self):
        w = _DedupWindow(max_window=16)
        for i in range(1000):
            assert not w.seen(i)
        assert w.low == 999
        assert len(w) == 0

    def test_out_of_order_gap_compacts_when_filled(self):
        w = _DedupWindow(max_window=16)
        assert not w.seen(0)
        assert not w.seen(2)
        assert not w.seen(3)
        assert len(w) == 2  # {2, 3} parked above the watermark
        assert not w.seen(1)  # gap fills
        assert w.low == 3
        assert len(w) == 0

    def test_duplicates_reported_below_and_above_watermark(self):
        w = _DedupWindow(max_window=16)
        for i in (0, 1, 5):
            w.seen(i)
        assert w.seen(0)  # below watermark
        assert w.seen(5)  # in the window
        assert not w.seen(4)

    def test_overflow_jumps_watermark_over_a_permanent_hole(self):
        w = _DedupWindow(max_window=2)
        for i in (5, 7, 9):  # id<5 never arrives: a peer gave up
            assert not w.seen(i)
        assert w.low == 5
        assert len(w) <= 2
        # the hole is written off as seen: a straggler is now suppressed
        assert w.seen(3)


class TestDedupStateBounded:
    def test_single_peer_stream_compacts_to_the_watermark(self):
        # with one destination the sender's ids are contiguous per stream,
        # so the receiver's window drains completely
        sim, inner = build(
            2, LossyAsynchronous(drop_probability=0.4, min_delay=0.05,
                                 max_delay=0.3),
            seed=12, n_messages=20, base_timeout=1.0,
        )
        sim.run(until=600.0)
        for pid in range(2):
            ch = channel_of(sim, pid)
            assert ch.gave_up == 0
            assert ch.dedup_state_size == len(ch._streams) == 1

    def test_multi_peer_state_stays_within_the_window_cap(self):
        # ids are per-channel, not per-destination: a receiver's stream has
        # permanent holes for ids addressed to the other peer, so state is
        # bounded by max_window rather than fully compacted
        sim, inner = build(
            3, LossyAsynchronous(drop_probability=0.4, min_delay=0.05,
                                 max_delay=0.3),
            seed=12, n_messages=20, base_timeout=1.0, max_window=8,
        )
        sim.run(until=600.0)
        for pid in range(3):
            ch = channel_of(sim, pid)
            assert all(len(w) <= 8 for w in ch._streams.values())
            assert ch.dedup_state_size <= len(ch._streams) * 9
        # watermark jumps may write off an in-flight id (the documented
        # straggler tradeoff) so exactly-once weakens to at-most-once
        for p in inner:
            got = [m for _, m in p.received]
            assert len(got) == len(set(got))

    def test_window_cap_is_respected_under_permanent_holes(self):
        sim, _ = build(2, ReliableAsynchronous(), seed=0)
        ch = channel_of(sim, 0)
        w = _DedupWindow(max_window=8)
        for i in range(1, 1000, 2):  # all odd: every even id is a hole
            w.seen(i)
        assert len(w) <= 8
        assert ch.max_window == 1024  # default plumbed through


class TestIncarnationStreams:
    def _restart_factory(self, store):
        def factory():
            p = Chatter()
            store.append(p)
            return ReliableProcess(p)
        return factory

    def test_restarted_sender_is_a_fresh_stream(self):
        """Post-restart frames reuse ids from 0 but must not be swallowed."""
        inner = [Chatter(), Chatter()]
        sim = Simulation(
            wrap_reliable(inner), ReliableAsynchronous(0.1, 0.5), seed=13
        )
        reborn: list[Chatter] = []
        sim.crash_at(0, 5.0)
        sim.restart_at(0, 10.0, factory=self._restart_factory(reborn))
        sim.run(until=100.0)
        # original incarnation's chat arrived pre-crash, and the reborn
        # process's chat — same payload, same msg id 0, new incarnation —
        # arrives as well instead of being deduplicated away
        assert reborn, "restart factory never ran"
        got = [m for _, m in inner[1].received if m == ("chat", 0, 0)]
        assert len(got) == 2
        ch = channel_of(sim, 1)
        assert {inc for (_src, inc) in ch._streams} == {0, 1}

    def test_stale_ack_does_not_cancel_new_incarnations_send(self):
        sim, _ = build(2, ReliableAsynchronous(0.1, 0.5), seed=14)
        ch = channel_of(sim, 0)
        ch.send(1, "payload")
        assert ch.in_flight == 1
        ch._handle_ack(ch.incarnation - 1, 0)  # ack addressed to a prior life
        assert ch.in_flight == 1
        assert ch.acked == 0
        ch._handle_ack(ch.incarnation, 0)
        assert ch.in_flight == 0
        assert ch.acked == 1


class _RecordingPolicy:
    """TimeoutPolicy double that logs observe() calls."""

    def __init__(self, timeout=1.0):
        self.timeout = timeout
        self.observed: list[float] = []

    def current(self):
        return self.timeout

    def escalate(self):
        return self.timeout

    def note_progress(self):
        pass

    def observe(self, sample):
        self.observed.append(sample)


class TestTimeoutPolicyIntegration:
    def test_retransmit_timing_derives_from_policy_current(self):
        inner = [Chatter(), Chatter()]
        policy = _RecordingPolicy(timeout=3.0)
        wrapped = [
            ReliableProcess(inner[0], timeout_policy=policy, backoff=2.0,
                            jitter=0.0, max_retries=3, max_timeout=100.0),
            ReliableProcess(inner[1]),
        ]
        sim = Simulation(wrapped, LossyAsynchronous(drop_probability=1.0), seed=15)
        sim.run(until=100.0)
        sends = [
            ev.time for ev in sim.trace.events("send", pid=0)
            if ev.field("msg")[0] == "__rc_data__"
        ]
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        assert gaps == pytest.approx([3.0, 6.0, 12.0])  # current * backoff^k

    def test_karn_only_first_attempt_acks_are_observed(self):
        sim, _ = build(2, ReliableAsynchronous(0.1, 0.5), seed=16)
        ch = channel_of(sim, 0)
        rec = _RecordingPolicy()
        ch.timeout_policy = rec
        ch.send(1, "a")  # msg 0 — will be "retransmitted" before its ack
        ch.send(1, "b")  # msg 1 — acked on the first attempt
        ch.handle_timer((RETX_TAG, 0))
        assert ch.retransmissions == 1
        ch._handle_ack(ch.incarnation, 0)
        assert rec.observed == []  # ambiguous RTT: skipped
        ch._handle_ack(ch.incarnation, 1)
        assert len(rec.observed) == 1  # unambiguous: sampled

    def test_adaptive_policy_learns_rtt_end_to_end(self):
        inner = [Chatter(5), Chatter(5)]
        policy = AdaptiveTimeout(20.0, min_timeout=0.1, margin=2.0)
        wrapped = [
            ReliableProcess(inner[0], timeout_policy=policy),
            ReliableProcess(inner[1]),
        ]
        sim = Simulation(wrapped, ReliableAsynchronous(0.1, 0.3), seed=17)
        sim.run_to_quiescence()
        # round trips are in [0.2, 0.6]: the policy converges well below
        # the 20.0 initial guess
        assert policy.estimator.samples == 5
        assert policy.current() < 5.0

    def test_factory_policies_are_per_channel(self):
        made = []

        def factory():
            p = _RecordingPolicy()
            made.append(p)
            return p

        sim, _ = build(3, ReliableAsynchronous(0.1, 0.3), seed=18,
                       timeout_policy=factory)
        sim.run_to_quiescence()
        assert len(made) == 3
        assert all(channel_of(sim, pid).timeout_policy is made[pid]
                   for pid in range(3))


class TestSRBOverLossyLinks:
    """The channel is load-bearing: SRB loses liveness without it."""

    ADVERSARY = dict(drop_probability=0.25, min_delay=0.05, max_delay=0.5)

    def _run(self, reliable):
        sim, procs, _scheme = build_mp_srb_system(
            n=4, t=1, seed=42,
            adversary=LossyAsynchronous(**self.ADVERSARY),
            reliable=reliable,
        )
        for i in range(3):
            sim.at(1.0 + i, lambda i=i: procs[0].broadcast(f"m{i}"))
        sim.run(until=300.0)
        return check_srb(sim.trace, 0, range(4), expect_complete=True)

    def test_reliable_channel_restores_liveness(self):
        report = self._run(reliable=True)
        report.assert_ok()
        assert len(report.deliveries) == 12

    def test_without_channel_loss_kills_liveness(self):
        report = self._run(reliable=False)
        assert not report.ok
        assert report.validity_violations
