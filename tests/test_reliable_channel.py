"""Tests for the retransmission layer (repro.faults.channel)."""

from __future__ import annotations

import pytest

from repro.core import build_mp_srb_system, check_srb
from repro.errors import ConfigurationError
from repro.faults import (
    ChaosAdversary,
    LossyAsynchronous,
    ReliableChannel,
    ReliableProcess,
    wrap_reliable,
)
from repro.sim import (
    DuplicatingAsynchronous,
    Process,
    ReliableAsynchronous,
    Simulation,
)


class Chatter(Process):
    """Sends a numbered message to every peer at start; collects receipts."""

    def __init__(self, n_messages: int = 1):
        super().__init__()
        self.n_messages = n_messages
        self.received: list[tuple[int, object]] = []

    def on_start(self):
        for i in range(self.n_messages):
            self.ctx.broadcast(("chat", self.pid, i), include_self=False)

    def on_message(self, src, msg):
        self.received.append((src, msg))


def build(n, adversary, seed, n_messages=1, **channel_kwargs):
    inner = [Chatter(n_messages) for _ in range(n)]
    sim = Simulation(wrap_reliable(inner, **channel_kwargs), adversary, seed=seed)
    return sim, inner


def channel_of(sim, pid) -> ReliableChannel:
    return sim.processes[pid].channel


class TestReliableDelivery:
    def test_lossless_delivers_once_no_retransmit(self):
        sim, inner = build(3, ReliableAsynchronous(0.1, 0.5), seed=1)
        sim.run_to_quiescence()
        for p in inner:
            assert sorted(m for _, m in p.received) == sorted(
                ("chat", q, 0) for q in range(3) if q != p.pid
            )
        for pid in range(3):
            ch = channel_of(sim, pid)
            assert ch.retransmissions == 0
            assert ch.acked == ch.sent == 2
            assert ch.in_flight == 0

    def test_heavy_loss_still_delivers_exactly_once(self):
        sim, inner = build(
            3, LossyAsynchronous(drop_probability=0.6, min_delay=0.05,
                                 max_delay=0.3),
            seed=2, n_messages=3, base_timeout=1.0,
        )
        sim.run(until=400.0)
        for p in inner:
            got = sorted(m for _, m in p.received)
            assert got == sorted(
                ("chat", q, i) for q in range(3) if q != p.pid for i in range(3)
            )
        assert sum(channel_of(sim, pid).retransmissions for pid in range(3)) > 0
        assert all(channel_of(sim, pid).gave_up == 0 for pid in range(3))

    def test_network_duplication_suppressed(self):
        sim, inner = build(
            3, DuplicatingAsynchronous(dup_probability=1.0, max_copies=3), seed=3
        )
        sim.run_to_quiescence()
        for p in inner:
            assert len(p.received) == 2  # one per peer, duplicates suppressed
        assert sum(
            channel_of(sim, pid).duplicates_suppressed for pid in range(3)
        ) > 0

    def test_chaos_composite_faults(self):
        sim, inner = build(
            4, ChaosAdversary(n=4, active_until=60.0), seed=4, n_messages=4,
        )
        sim.run(until=300.0)
        for p in inner:
            got = sorted(m for _, m in p.received)
            assert got == sorted(
                ("chat", q, i) for q in range(4) if q != p.pid for i in range(4)
            )


class TestGiveUp:
    def test_give_up_after_max_retries(self):
        hook_calls = []
        inner = [Chatter(), Chatter()]
        wrapped = [
            ReliableProcess(
                p, base_timeout=0.5, max_retries=3,
                give_up=lambda dst, payload, attempts: hook_calls.append(
                    (dst, payload, attempts)
                ),
            )
            for p in inner
        ]
        sim = Simulation(
            wrapped, LossyAsynchronous(drop_probability=1.0), seed=5
        )
        sim.run(until=200.0)
        assert inner[0].received == [] and inner[1].received == []
        assert sorted(hook_calls) == [(0, ("chat", 1, 0), 4), (1, ("chat", 0, 0), 4)]
        assert channel_of(sim, 0).gave_up == 1
        give_ups = [
            ev for ev in sim.trace.events("custom")
            if ev.field("event") == "rc_give_up"
        ]
        assert len(give_ups) == 2

    def test_retransmission_backoff_grows(self):
        inner = [Chatter(), Chatter()]
        wrapped = [
            ReliableProcess(p, base_timeout=1.0, backoff=2.0, jitter=0.0,
                            max_retries=4)
            for p in inner
        ]
        sim = Simulation(wrapped, LossyAsynchronous(drop_probability=1.0), seed=6)
        sim.run(until=200.0)
        sends = [
            ev.time for ev in sim.trace.events("send", pid=0)
            if ev.field("msg")[0] == "__rc_data__"
        ]
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        assert gaps == sorted(gaps)
        assert gaps == pytest.approx([1.0, 2.0, 4.0, 8.0])


class TestInterop:
    def test_unframed_messages_pass_through(self):
        class RawSender(Process):
            def __init__(self):
                super().__init__()
                self.received = []

            def on_start(self):
                self.ctx.send(1, ("raw", 99))

            def on_message(self, src, msg):
                self.received.append(msg)

        inner = Chatter()
        sim = Simulation(
            [RawSender(), ReliableProcess(inner)],
            ReliableAsynchronous(0.1, 0.2),
            seed=7,
        )
        sim.run(until=50.0)
        assert (0, ("raw", 99)) in inner.received

    def test_inner_timers_still_fire(self):
        class TimerUser(Process):
            def __init__(self):
                super().__init__()
                self.fired = []

            def on_start(self):
                self.ctx.set_timer(1.0, "tick")

            def on_timer(self, tag):
                self.fired.append((self.ctx.now, tag))

        inner = TimerUser()
        sim = Simulation(
            [ReliableProcess(inner), ReliableProcess(Chatter())],
            ReliableAsynchronous(0.1, 0.2),
            seed=8,
        )
        sim.run_to_quiescence()
        assert inner.fired == [(1.0, "tick")]

    def test_crashed_host_sends_nothing(self):
        class LateChatter(Chatter):
            def on_start(self):
                self.ctx.set_timer(10.0, "go")

            def on_timer(self, tag):
                super().on_start()  # broadcast now

        inner = [LateChatter(), LateChatter()]
        sim = Simulation(
            wrap_reliable(inner, max_retries=3), ReliableAsynchronous(0.5, 0.9),
            seed=9,
        )
        sim.crash_at(0, 5.0)
        sim.run_to_quiescence()
        assert inner[1].received == []  # pid 0 crashed before its send
        assert inner[0].received == []  # deliveries to a crashed host drop
        assert channel_of(sim, 1).gave_up == 1  # retries at the dead peer end


class TestChannelConfig:
    def test_invalid_parameters_rejected(self):
        sim, _ = build(2, ReliableAsynchronous(), seed=0)
        ctx = sim.processes[0].channel.ctx
        with pytest.raises(ConfigurationError):
            ReliableChannel(ctx, base_timeout=0.0)
        with pytest.raises(ConfigurationError):
            ReliableChannel(ctx, base_timeout=5.0, max_timeout=1.0)
        with pytest.raises(ConfigurationError):
            ReliableChannel(ctx, backoff=0.5)
        with pytest.raises(ConfigurationError):
            ReliableChannel(ctx, jitter=2.0)
        with pytest.raises(ConfigurationError):
            ReliableChannel(ctx, max_retries=-1)


class TestSRBOverLossyLinks:
    """The channel is load-bearing: SRB loses liveness without it."""

    ADVERSARY = dict(drop_probability=0.25, min_delay=0.05, max_delay=0.5)

    def _run(self, reliable):
        sim, procs, _scheme = build_mp_srb_system(
            n=4, t=1, seed=42,
            adversary=LossyAsynchronous(**self.ADVERSARY),
            reliable=reliable,
        )
        for i in range(3):
            sim.at(1.0 + i, lambda i=i: procs[0].broadcast(f"m{i}"))
        sim.run(until=300.0)
        return check_srb(sim.trace, 0, range(4), expect_complete=True)

    def test_reliable_channel_restores_liveness(self):
        report = self._run(reliable=True)
        report.assert_ok()
        assert len(report.deliveries) == 12

    def test_without_channel_loss_kills_liveness(self):
        report = self._run(reliable=False)
        assert not report.ok
        assert report.validity_violations
