"""Negative-path tests for the view-change machinery at system level.

Byzantine replicas will send forged REQ-VIEW-CHANGE votes, doctored
NEW-VIEW bundles, and mismatched re-proposal sets; correct replicas must
ignore all of it without losing progress in the current view.
"""

from __future__ import annotations

import pytest

from repro.consensus import build_minbft_system, build_pbft_system, check_replication
from repro.consensus.minbft import NEW_VIEW, REQ_VIEW_CHANGE, rvc_domain
from repro.crypto.signatures import Signature
from repro.sim import Process, ReliableAsynchronous, Simulation


class TestMinBFTViewChangeHardening:
    def test_forged_rvc_flood_cannot_move_views(self):
        """f forged/unsigned RVC votes never reach the f+1 threshold."""
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=3, seed=50, req_timeout=15.0,
        )

        def spray():
            # the (Byzantine) backup 2 sprays RVCs claiming to be everyone
            ctx = reps[2].ctx
            for claimed in range(3):
                fake = Signature(signer=claimed, tag=b"\x00" * 32)
                for dst in range(3):
                    ctx.send(dst, (REQ_VIEW_CHANGE, claimed, 1, fake))

        sim.declare_byzantine(2)
        sim.at(0.2, spray)
        sim.run(until=2000.0)
        rep = check_replication(sim.trace, [0, 1], expected_ops={3: 3})
        rep.assert_ok()
        assert all(r.view == 0 for r in reps[:2])  # nobody moved

    def test_legit_signature_for_wrong_view_rejected(self):
        """An RVC signature binds its target view; replays for other views fail."""
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=2, seed=51, req_timeout=15.0,
        )

        def replay():
            ctx = reps[2].ctx
            sig = reps[2].signer.sign(rvc_domain(2, 5))  # signed for view 5
            for dst in range(3):
                ctx.send(dst, (REQ_VIEW_CHANGE, 2, 7, sig))  # claimed view 7

        sim.declare_byzantine(2)
        sim.at(0.2, replay)
        sim.run(until=2000.0)
        rep = check_replication(sim.trace, [0, 1], expected_ops={3: 2})
        rep.assert_ok()
        assert reps[0]._rvc_votes.get(7, set()) == set()

    def test_forged_new_view_ignored(self):
        """A NEW-VIEW from a non-primary (or with a junk bundle) does nothing."""
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=3, seed=52, req_timeout=30.0,
        )

        def forge():
            # Byzantine replica 2 is NOT the primary of view 1 (that's 1);
            # its USIG-valid NEW-VIEW must be rejected on the primary check,
            # and a bundle of garbage must fail validation regardless
            reps[2]._usig_broadcast((NEW_VIEW, 1, ("junk", "junk")))

        sim.declare_byzantine(2)
        sim.at(0.2, forge)
        sim.run(until=2000.0)
        rep = check_replication(sim.trace, [0, 1], expected_ops={3: 3})
        rep.assert_ok()
        assert all(r.view == 0 for r in reps[:2])


class TestPBFTViewChangeHardening:
    def test_mismatched_reproposals_rejected(self):
        """A NEW-VIEW whose proposal set deviates from the deterministic
        recomputation is ignored by backups."""
        from repro.consensus.pbft import PBFTReplica

        sim, reps, clients = build_pbft_system(
            f=1, n_clients=1, ops_per_client=3, seed=53,
            req_timeout=20.0, retry_timeout=60.0,
        )
        sim.crash_at(0, 1.0)
        # intercept: when replica 1 (new primary) would send NEW-VIEW, a
        # Byzantine shadow sends a conflicting one first with doctored
        # reproposals signed by... it can't sign as replica 1 — so backups
        # verify the signature and drop it. We emulate with a junk sender:

        def forge():
            ctx = reps[2].ctx
            fake_sig = Signature(signer=1, tag=b"\x01" * 32)
            ctx.broadcast(("PBFT-NEW-VIEW", 1, (), (), fake_sig),
                          include_self=False)

        sim.at(5.0, forge)
        sim.run(until=8000.0)
        rep = check_replication(sim.trace, [1, 2, 3], expected_ops={4: 3})
        rep.assert_ok()
        # the real view change still happened and agreed
        assert all(r.view >= 1 for r in reps[1:])
