"""Algorithm 1 over timed (2Δ) unidirectional rounds — message passing.

The shared-memory transport makes sender equivocation physically hard (one
log, everyone reads it). Timed rounds are plain message passing, so a
Byzantine sender CAN send different values to different processes — this
is the sharpest test of the paper's argument that *unidirectionality
itself*, not shared memory, is what Algorithm 1 needs.
"""

from __future__ import annotations

import pytest

from repro.core.rounds import TimedRoundTransport
from repro.core.srb import check_srb
from repro.core.srb_from_uni import SRBFromUnidirectional, val_domain
from repro.crypto import SignatureScheme
from repro.sim import ReliableAsynchronous, Simulation

DELTA = 1.0


def build(n, t, seed, sender_cls=None):
    scheme = SignatureScheme(n, seed=seed)
    procs = []
    for p in range(n):
        cls = sender_cls if (p == 0 and sender_cls) else SRBFromUnidirectional
        procs.append(
            cls(TimedRoundTransport(wait=2 * DELTA), 0, t, scheme,
                scheme.signer(p))
        )
    sim = Simulation(procs, ReliableAsynchronous(0.0, DELTA), seed=seed)
    return sim, procs


class TestHonestSender:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_stream_delivers(self, seed):
        sim, procs = build(5, 2, seed)
        sim.at(0.5, lambda: procs[0].broadcast("a"))
        sim.at(1.0, lambda: procs[0].broadcast("b"))
        sim.run(until=300.0)
        rep = check_srb(sim.trace, 0, range(5))
        rep.assert_ok()
        assert len(rep.deliveries) == 10

    def test_with_crash(self):
        sim, procs = build(5, 2, seed=4)
        sim.at(0.5, lambda: procs[0].broadcast("survives"))
        sim.crash_at(4, 1.0)
        sim.run(until=300.0)
        check_srb(sim.trace, 0, range(4)).assert_ok()


class PerDestinationEquivocator(SRBFromUnidirectional):
    """Sends VAL 'A' to the first half and VAL 'B' to the second half —
    real network equivocation, impossible over the shared-memory transport."""

    def equivocate(self):
        k = 1
        half = self.ctx.n // 2
        for dst in range(self.ctx.n):
            m = "A" if dst < half else "B"
            sig = self.signer.sign(val_domain(self.pid, k, m))
            self.ctx.record("bcast", seq=k, value=m)
            self.ctx.send(
                dst, ("__round__", ("__post__",), ("VAL", k, m, sig))
            )


class TestEquivocatingSender:
    @pytest.mark.parametrize("seed", [5, 6, 7, 8])
    def test_network_equivocation_never_splits(self, seed):
        """The COPY round's unidirectionality exposes the conflict to at
        least one L1 builder on every schedule — agreement holds."""
        sim, procs = build(5, 2, seed, sender_cls=PerDestinationEquivocator)
        sim.declare_byzantine(0)
        sim.at(0.5, lambda: procs[0].equivocate())
        sim.run(until=300.0)
        rep = check_srb(sim.trace, 0, [1, 2, 3, 4], sender_correct=False)
        assert not rep.agreement_violations, rep.agreement_violations
        assert not rep.integrity_violations
        assert not rep.sequencing_violations

    def test_contrast_sub_2delta_rounds_lose_the_guarantee(self):
        """The ablation behind the 2Δ bound: under a fair schedule whose
        cross-group delays exceed the round wait, the COPY rounds are no
        longer unidirectional — the property Algorithm 1's safety argument
        consumes is gone. (With wait ≥ 2Δ of the *actual* delay bound the
        same schedule keeps it, per TestHonestSender and bench Q2c.)"""
        from repro.core.directionality import check_directionality
        from repro.sim import ScriptedAdversary
        from repro.sim.adversary import LinkRule

        # delays are ≤ 50 (a legal Δ' = 50 network); rounds wait only 2.0
        adv = ScriptedAdversary(base_delay=0.05)
        adv.add_rule(LinkRule([1, 2], [3, 4], 50.0))
        adv.add_rule(LinkRule([3, 4], [1, 2], 50.0))
        scheme = SignatureScheme(5, seed=200)
        procs = []
        for p in range(5):
            cls = PerDestinationEquivocator if p == 0 else SRBFromUnidirectional
            procs.append(
                cls(TimedRoundTransport(wait=2.0), 0, 2, scheme,
                    scheme.signer(p))
            )
        sim = Simulation(procs, adv, seed=200)
        sim.declare_byzantine(0)
        sim.at(0.5, lambda: procs[0].equivocate())
        sim.run(until=300.0)
        rep = check_directionality(sim.trace, [1, 2, 3, 4])
        assert not rep.is_unidirectional, (
            "rounds shorter than the true delay bound must lose "
            "unidirectionality under a cross-group-slow schedule"
        )
        # SRB safety must STILL hold in this particular run (no correct
        # process delivered conflicting values) — but it is no longer
        # guaranteed by the round property; only by luck of the quorums.
        srb = check_srb(sim.trace, 0, [1, 2, 3, 4], sender_correct=False,
                        expect_complete=False)
        assert not srb.agreement_violations
