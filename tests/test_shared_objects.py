"""Tests for SWMR registers, sticky bits, PEATS, and ACLs (direct execution).

These test the objects' linearization-point semantics directly via
``execute``; their in-simulation behavior is covered by the shared-memory
and round-transport tests.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AccessDeniedError, ConfigurationError
from repro.hardware.acl import AccessControlList, EVERYONE, Policy
from repro.hardware.peats import PEATS, WILDCARD, matches, remove_only_own, single_inserter_per_slot
from repro.hardware.registers import AppendOnlyRegister, SWMRRegister, append_log_array, swmr_array
from repro.hardware.sticky import StickyBit, StickyRegister, UNSET, sticky_array


class TestACL:
    def test_single_writer_pattern(self):
        acl = AccessControlList.single_writer(owner=2)
        assert acl.allows(2, "write") and not acl.allows(1, "write")
        assert acl.allows(0, "read") and acl.allows(2, "read")

    def test_deny_by_default(self):
        acl = AccessControlList({"read": EVERYONE})
        assert not acl.allows(0, "unknown_op")

    def test_enforce_raises_with_details(self):
        acl = AccessControlList({"write": (0,)})
        with pytest.raises(AccessDeniedError) as err:
            acl.enforce(3, "obj", "write")
        assert err.value.pid == 3 and err.value.operation == "write"

    def test_writers_introspection(self):
        acl = AccessControlList({"write": (0, 1), "read": EVERYONE})
        assert acl.writers("write") == frozenset({0, 1})
        assert acl.writers("read") is None
        assert acl.writers("nope") == frozenset()

    def test_bad_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            AccessControlList({"write": 42})


class TestSWMRRegister:
    def test_owner_writes_all_read(self):
        r = SWMRRegister("r", owner=1)
        r.execute(1, "write", ("v",))
        assert r.execute(0, "read", ()) == "v"

    def test_non_owner_write_denied(self):
        r = SWMRRegister("r", owner=1)
        with pytest.raises(AccessDeniedError):
            r.execute(0, "write", ("v",))

    def test_array_builder(self):
        regs = swmr_array(3)
        assert [r.owner for r in regs] == [0, 1, 2]
        assert regs[1].name == "reg1"


class TestAppendOnlyRegister:
    def test_append_returns_index(self):
        log = AppendOnlyRegister("l", owner=0)
        assert log.execute(0, "append", ("a",)) == 0
        assert log.execute(0, "append", ("b",)) == 1

    def test_read_full_and_suffix(self):
        log = AppendOnlyRegister("l", owner=0)
        for v in "abc":
            log.execute(0, "append", (v,))
        assert log.execute(1, "read", ()) == ("a", "b", "c")
        assert log.execute(1, "read_from", (1,)) == ("b", "c")
        assert log.execute(1, "read_from", (-5,)) == ("a", "b", "c")
        assert log.execute(1, "length", ()) == 3

    def test_append_denied_for_non_owner(self):
        log = AppendOnlyRegister("l", owner=0)
        with pytest.raises(AccessDeniedError):
            log.execute(1, "append", ("x",))

    def test_array_builder(self):
        logs = append_log_array(2, prefix="L")
        assert logs[0].name == "L0" and logs[1].owner == 1


class TestSticky:
    def test_first_write_wins(self):
        s = StickyRegister("s")
        assert s.execute(0, "write", ("first",)) is True
        assert s.execute(1, "write", ("second",)) is False
        assert s.execute(2, "read", ()) == "first"
        assert s.first_writer == 0

    def test_unset_sentinel(self):
        s = StickyRegister("s")
        assert s.execute(0, "read", ()) is UNSET
        assert not s.execute(0, "is_set", ())
        assert not UNSET  # falsy
        assert repr(UNSET) == "UNSET"

    def test_owned_sticky_acl(self):
        s = StickyRegister("s", owner=1)
        with pytest.raises(AccessDeniedError):
            s.execute(0, "write", ("x",))
        assert s.execute(1, "write", ("x",)) is True

    def test_sticky_bit_domain(self):
        b = StickyBit("b")
        with pytest.raises(ConfigurationError):
            b.execute(0, "write", (2,))
        assert b.execute(0, "write", (1,)) is True
        assert b.execute(0, "read", ()) == 1

    def test_sticky_array(self):
        arr = sticky_array(3)
        assert [s.owner for s in arr] == [0, 1, 2]

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 1)), min_size=1))
    @settings(max_examples=50)
    def test_sticky_never_changes_after_first(self, writes):
        s = StickyRegister("s")
        first = writes[0][1]
        for pid, v in writes:
            s.execute(pid, "write", (v,))
        assert s.execute(0, "read", ()) == first


class TestPEATS:
    def test_out_rdp_inp(self):
        space = PEATS("t")
        space.execute(0, "out", (("job", 1),))
        space.execute(1, "out", (("job", 2),))
        assert space.execute(2, "rdp", ((("job", 1))[0:0] + ("job", WILDCARD),)) == ("job", 1)
        assert space.execute(2, "inp", (("job", WILDCARD),)) == ("job", 1)
        assert space.execute(2, "inp", (("job", WILDCARD),)) == ("job", 2)
        assert space.execute(2, "inp", (("job", WILDCARD),)) is None

    def test_count_and_rdall(self):
        space = PEATS("t")
        for i in range(3):
            space.execute(0, "out", (("x", i),))
        space.execute(0, "out", (("y", 0),))
        assert space.execute(1, "count", (("x", WILDCARD),)) == 3
        assert space.execute(1, "rdall", (("x", WILDCARD),)) == (
            ("x", 0), ("x", 1), ("x", 2)
        )

    def test_pattern_matching(self):
        assert matches((WILDCARD, 2), ("a", 2))
        assert not matches((WILDCARD, 2), ("a", 3))
        assert not matches((WILDCARD,), ("a", 2))  # arity mismatch

    def test_arity_enforced(self):
        space = PEATS("t", arity=2)
        with pytest.raises(ConfigurationError):
            space.execute(0, "out", (("too", "many", "fields"),))
        with pytest.raises(ConfigurationError):
            space.execute(0, "rdp", (("one",),))

    def test_non_tuple_rejected(self):
        space = PEATS("t")
        with pytest.raises(ConfigurationError):
            space.execute(0, "out", ("not-a-tuple",))

    def test_single_inserter_policy(self):
        space = PEATS("t", policy=single_inserter_per_slot(0))
        space.execute(1, "out", ((1, "mine"),))
        with pytest.raises(AccessDeniedError):
            space.execute(1, "out", ((2, "spoofed"),))
        with pytest.raises(AccessDeniedError):
            space.execute(1, "inp", ((1, WILDCARD),))
        assert space.execute(2, "rdp", ((1, WILDCARD),)) == (1, "mine")

    def test_remove_only_own_policy(self):
        space = PEATS("t", policy=remove_only_own())
        space.execute(0, "out", (("doc", "a"),))
        with pytest.raises(AccessDeniedError):
            space.execute(1, "inp", (("doc", WILDCARD),))
        assert space.execute(0, "inp", (("doc", WILDCARD),)) == ("doc", "a")

    def test_state_aware_policy(self):
        """A policy that caps the space at 2 entries (PEATS 'augmented' power)."""

        def cap(state, pid, op, args):
            if op != "out":
                return True
            return len(state.entries) < 2

        space = PEATS("t", policy=Policy(cap))
        space.execute(0, "out", (("e", 1),))
        space.execute(0, "out", (("e", 2),))
        with pytest.raises(AccessDeniedError):
            space.execute(0, "out", (("e", 3),))
