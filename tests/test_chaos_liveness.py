"""Liveness auditing under chaos: the GST contract, end to end.

Fast tests cover a couple of seeds per arm; the ``slow``-marked sweeps run
the full grids the acceptance criteria talk about (``-m slow`` to select).
"""

from __future__ import annotations

import pytest

from repro.consensus.safety import check_replication_liveness
from repro.faults.chaos import make_schedule, run_chaos

FAST_SEEDS = (0, 1)


class TestScheduleCarriesGST:
    def test_every_schedule_has_gst_and_delta(self):
        for seed in range(5):
            s = make_schedule(seed, crashable=range(3))
            assert s.gst == pytest.approx(s.horizon * 0.4)
            assert 0.5 <= s.delta <= 1.5
            assert s.active_until <= s.gst
            assert f"{s.gst:g}" in s.describe()

    def test_gst_knob_is_seed_stable(self):
        # drawing delta must not perturb the rest of the schedule
        a = make_schedule(3, crashable=range(3))
        b = make_schedule(3, crashable=range(3))
        assert a.crashes == b.crashes
        assert a.delta == b.delta


class TestHonestProtocolsAreLive:
    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_srb_clean(self, seed):
        r = run_chaos("srb-uni", seed)
        assert r.ok, r.violations + r.liveness_violations
        assert r.liveness_violations == []

    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_minbft_clean(self, seed):
        r = run_chaos("minbft", seed)
        assert r.ok, r.violations + r.liveness_violations
        assert r.liveness_violations == []

    def test_minbft_adaptive_arm_clean(self):
        r = run_chaos("minbft", 0, timeouts="adaptive")
        assert r.ok, r.violations + r.liveness_violations
        assert r.stats["timeouts"] == "adaptive"


class TestStallingPrimaryIsCaught:
    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_flagged_by_the_liveness_auditor(self, seed):
        r = run_chaos("minbft-stalling", seed)
        assert not r.ok
        assert r.liveness_violations  # the auditor, not just client counts
        assert any("never completed" in v for v in r.liveness_violations)

    def test_stalling_is_safety_clean(self):
        # the fixture executes nothing, so order/duplication checks have
        # nothing to object to: only the liveness layer can convict it
        r = run_chaos("minbft-stalling", 0)
        assert all("liveness" in v or "never completed" in v
                   or "view change" in v for v in r.liveness_violations)


class TestBatchEqualsStreamOnRealTraces:
    def test_verdict_identity_on_a_chaos_run(self):
        # re-run one honest cell and re-audit its trace in batch mode;
        # the streaming verdict embedded in the result must agree
        r = run_chaos("minbft", 0)
        assert r.ok and r.liveness_violations == []
        # (the streaming checker found nothing; a batch pass over the same
        # parameters is exercised against synthetic traces in
        # test_liveness_checkers.py — here we confirm the honest trace has
        # obligations at all, so the clean verdict is not vacuous)
        schedule = make_schedule(0, crashable=range(3))
        assert schedule.gst < schedule.horizon


@pytest.mark.slow
class TestFullSweeps:
    SEEDS = range(10)

    def test_honest_grid_is_liveness_clean(self):
        for protocol in ("srb-uni", "minbft"):
            for seed in self.SEEDS:
                r = run_chaos(protocol, seed)
                assert r.ok, (protocol, seed, r.violations,
                              r.liveness_violations)
                assert r.liveness_violations == []

    def test_stalling_primary_flagged_on_every_seed(self):
        for seed in self.SEEDS:
            r = run_chaos("minbft-stalling", seed)
            assert not r.ok, seed
            assert r.liveness_violations, seed

    def test_adaptive_arm_clean_across_seeds(self):
        for seed in self.SEEDS:
            r = run_chaos("minbft", seed, timeouts="adaptive")
            assert r.ok, (seed, r.violations, r.liveness_violations)
