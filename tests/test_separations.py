"""Tests for the §4.1 separation scenarios and the classification lattice."""

from __future__ import annotations

import pytest

from repro.core.classification import ARROWS, render_figure, run_classification
from repro.core.separations import run_srb_separation
from repro.errors import ConfigurationError
from repro.sim.partition import srb_separation_sets, split, weak_agreement_sets


class TestPartitionHelpers:
    def test_split_consecutive(self):
        sets = split(4, [2, 1, 1], ["Q", "C1", "C2"])
        assert tuple(sets["Q"]) == (0, 1)
        assert tuple(sets["C1"]) == (2,)
        assert tuple(sets["C2"]) == (3,)

    def test_split_validation(self):
        with pytest.raises(ConfigurationError):
            split(4, [2, 1], ["A", "B", "C"])
        with pytest.raises(ConfigurationError):
            split(4, [2, 1], ["A", "B"])
        with pytest.raises(ConfigurationError):
            split(4, [5, -1], ["A", "B"])

    def test_srb_separation_sets_bounds(self):
        sets = srb_separation_sets(6, 2)
        assert len(sets["Q"]) == 4 and len(sets["C1"]) == 1 and len(sets["C2"]) == 1
        with pytest.raises(ConfigurationError, match="f > 1"):
            srb_separation_sets(4, 1)
        with pytest.raises(ConfigurationError, match="n > 2f"):
            srb_separation_sets(4, 2)

    def test_weak_agreement_sets(self):
        sets = weak_agreement_sets(4, 2)
        assert [len(sets[k]) for k in ("P", "Q", "R", "S")] == [1, 1, 1, 1]
        with pytest.raises(ConfigurationError):
            weak_agreement_sets(5, 2)


class TestSRBSeparation:
    @pytest.mark.parametrize("n,f", [(6, 2), (7, 2), (9, 3)])
    def test_separation_holds(self, n, f):
        out = run_srb_separation(n=n, f=f, seed=0)
        out.assert_holds()

    def test_scenario_obligations(self):
        out = run_srb_separation(n=6, f=2, seed=1)
        q = set(out.sets["Q"])
        c1, c2 = set(out.sets["C1"]), set(out.sets["C2"])
        # scenario 1: Q and C2 finish; scenario 2: Q and C1 finish
        assert q <= out.scenario1.finished and c2 <= out.scenario1.finished
        assert q <= out.scenario2.finished and c1 <= out.scenario2.finished
        # scenario 3: everyone finishes (all correct)
        assert out.scenario3.finished == frozenset(range(6))

    def test_violating_pair_is_c1_c2(self):
        out = run_srb_separation(n=6, f=2, seed=2)
        v = out.directionality3.unidirectional_violations[0]
        pair = {v.p, v.q}
        assert pair & set(out.sets["C1"]) and pair & set(out.sets["C2"])

    def test_deterministic_across_repeats(self):
        a = run_srb_separation(n=6, f=2, seed=3)
        b = run_srb_separation(n=6, f=2, seed=3)
        assert a.scenario3.view(0) == b.scenario3.view(0)


class TestClassification:
    def test_every_arrow_verifies(self):
        result = run_classification(seed=0)
        assert result.all_ok, result.failures()

    def test_subset_selection(self):
        result = run_classification(seed=0, arrow_ids=["TRINC->A2M"])
        assert set(result.evidence) == {"TRINC->A2M"}

    def test_render_contains_every_arrow(self):
        result = run_classification(seed=0, arrow_ids=["TRINC->A2M", "UNI->ASYNC"])
        text = render_figure(result)
        assert "TRINC->A2M" in text and "UNI->ASYNC" in text
        assert "Figure 1" in text

    def test_arrow_metadata_complete(self):
        for arrow in ARROWS:
            assert arrow.claim and arrow.paper_ref
            assert arrow.kind in ("implements", "cannot-implement", "implements-iff")
