"""Trace v2 tests: indexed queries vs linear-scan semantics, observers,
retention, and JSONL round-trips (repro.sim.trace)."""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.analysis.tracefile import (
    format_trace_summary,
    load_trace,
    replay_observers,
    trace_summary,
)
from repro.errors import ConfigurationError
from repro.sim.trace import (
    _LOCAL_VIEW_KINDS,
    DataclassValue,
    OpaqueValue,
    Trace,
    TraceEvent,
    TraceObserver,
    TraceStore,
)

KINDS = [
    "send", "deliver", "timer_set", "timer_fire", "op_invoke",
    "op_linearize", "op_respond", "decide", "bcast", "bcast_deliver",
    "round_sent", "round_recv", "round_end", "custom",
]


def random_events(seed: int, count: int, n_pids: int = 5):
    rng = random.Random(seed)
    events = []
    for i in range(count):
        kind = rng.choice(KINDS)
        pid = rng.randrange(n_pids)
        fields = {"tag": rng.randrange(8), "payload": f"v{rng.randrange(4)}"}
        events.append((float(i), kind, pid, fields))
    return events


def build(events, retention=None):
    t = TraceStore(retention=retention)
    for time, kind, pid, fields in events:
        t.record(time, kind, pid, **fields)
    return t


# --- reference implementation: the pre-refactor linear-scan semantics ------


class LinearScanReference:
    """The old Trace behavior: one list, every query scans all of it."""

    def __init__(self):
        self.log: list[TraceEvent] = []

    def record(self, time, kind, pid, **fields):
        self.log.append(
            TraceEvent(index=len(self.log), time=time, kind=kind, pid=pid,
                       fields=fields)
        )

    def events(self, kind=None, pid=None, predicate=None):
        out = []
        for ev in self.log:
            if kind is not None and ev.kind != kind:
                continue
            if pid is not None and ev.pid != pid:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    def local_view(self, pid):
        return tuple(
            ev.view_key() for ev in self.log
            if ev.pid == pid and ev.kind in _LOCAL_VIEW_KINDS
        )


class TestIndexedQueriesMatchLinearScan:
    """Seeded property test: the indexed store is observationally identical
    to the pre-refactor single-list scan on random event mixes."""

    @pytest.mark.parametrize("seed", range(8))
    def test_events_queries_agree(self, seed):
        events = random_events(seed, count=400)
        store, ref = build(events), LinearScanReference()
        for time, kind, pid, fields in events:
            ref.record(time, kind, pid, **fields)
        assert store.events() == ref.events()
        for kind in KINDS:
            assert store.events(kind) == ref.events(kind)
        for pid in range(5):
            assert store.events(pid=pid) == ref.events(pid=pid)
        for kind in ("send", "decide", "custom"):
            for pid in range(5):
                assert store.events(kind, pid=pid) == ref.events(kind, pid=pid)
        pred = lambda e: e.field("tag") in (0, 3)
        assert store.events("custom", predicate=pred) == \
            ref.events("custom", predicate=pred)

    @pytest.mark.parametrize("seed", range(8))
    def test_local_views_agree(self, seed):
        events = random_events(seed, count=400)
        store, ref = build(events), LinearScanReference()
        for time, kind, pid, fields in events:
            ref.record(time, kind, pid, **fields)
        for pid in range(5):
            assert store.local_view(pid) == ref.local_view(pid)

    def test_views_equal_matches_per_pid_comparison(self):
        a = build(random_events(1, count=300))
        b = build(random_events(1, count=300))
        c = build(random_events(2, count=300))
        assert a.views_equal(b, range(5))
        assert not a.views_equal(c, range(5))
        assert a.differing_views(b, range(5)) == []


class TestObserverBus:
    def test_observers_see_every_event_in_order(self):
        seen = []

        class Collector(TraceObserver):
            def on_event(self, ev):
                seen.append(ev.index)

        t = TraceStore()
        t.subscribe(Collector())
        for i in range(20):
            t.record(float(i), "custom", 0, event="x")
        assert seen == list(range(20))

    def test_subscription_order_is_publication_order(self):
        calls = []

        class Tagged(TraceObserver):
            def __init__(self, tag):
                self.tag = tag

            def on_event(self, ev):
                calls.append(self.tag)

        t = TraceStore()
        t.subscribe(Tagged("a"))
        t.subscribe(Tagged("b"))
        t.record(0.0, "custom", 0)
        assert calls == ["a", "b"]

    def test_unsubscribe_stops_delivery(self):
        seen = []

        class Collector(TraceObserver):
            def on_event(self, ev):
                seen.append(ev.index)

        obs = Collector()
        t = TraceStore()
        t.subscribe(obs)
        t.record(0.0, "custom", 0)
        t.unsubscribe(obs)
        t.record(1.0, "custom", 0)
        assert seen == [0]
        assert t.observers == ()

    def test_raising_observer_aborts_record(self):
        class Tripwire(TraceObserver):
            def on_event(self, ev):
                if ev.field("event") == "bad":
                    raise ValueError("tripped")

        t = TraceStore()
        t.subscribe(Tripwire())
        t.record(0.0, "custom", 0, event="fine")
        with pytest.raises(ValueError, match="tripped"):
            t.record(1.0, "custom", 0, event="bad")
        # the event was recorded before observers ran — the trace shows it
        assert len(t) == 2

    def test_replay_into_feeds_retained_events(self):
        seen = []

        class Collector(TraceObserver):
            def on_event(self, ev):
                seen.append((ev.index, ev.kind))

        t = build(random_events(3, count=50))
        t.replay_into(Collector())
        assert seen == [(ev.index, ev.kind) for ev in t.events()]


class TestRetention:
    def test_ring_buffer_keeps_most_recent(self):
        t = build(random_events(4, count=100), retention=30)
        assert len(t) == 30
        assert t.total_recorded == 100
        assert t.evicted == 70
        assert [ev.index for ev in t.events()] == list(range(70, 100))

    def test_counts_cover_evicted_prefix(self):
        events = random_events(5, count=200)
        bounded = build(events, retention=25)
        unbounded = build(events)
        assert bounded.kind_counts() == unbounded.kind_counts()
        assert bounded.pid_counts() == unbounded.pid_counts()

    def test_indexed_queries_consistent_after_eviction(self):
        events = random_events(6, count=200)
        bounded = build(events, retention=40)
        unbounded = build(events)
        keep = {ev.index for ev in bounded.events()}
        for kind in KINDS:
            expect = [ev for ev in unbounded.events(kind) if ev.index in keep]
            assert bounded.events(kind) == expect
        for pid in range(5):
            expect = [ev for ev in unbounded.events(pid=pid) if ev.index in keep]
            assert bounded.events(pid=pid) == expect

    def test_on_evict_fires_with_the_evicted_event(self):
        evicted = []

        class Watcher(TraceObserver):
            def on_evict(self, ev):
                evicted.append(ev.index)

        t = TraceStore(retention=5)
        t.subscribe(Watcher())
        for i in range(12):
            t.record(float(i), "custom", 0)
        assert evicted == list(range(7))

    def test_retention_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="retention"):
            TraceStore(retention=0)

    def test_observers_see_all_despite_retention(self):
        seen = []

        class Collector(TraceObserver):
            def on_event(self, ev):
                seen.append(ev.index)

        t = TraceStore(retention=3)
        t.subscribe(Collector())
        for i in range(10):
            t.record(float(i), "custom", 0)
        assert seen == list(range(10))


@dataclass(frozen=True)
class _Probe:
    x: int
    y: str


class _NotSerializable:
    def __repr__(self):
        return "<probe object>"


class TestJsonlRoundTrip:
    def test_random_trace_round_trips_identically(self):
        t = build(random_events(7, count=300))
        back = TraceStore.from_jsonl(t.to_jsonl())
        assert back.events() == t.events()
        for pid in range(5):
            assert back.local_view(pid) == t.local_view(pid)
        assert back.views_equal(t, range(5))
        # re-export is byte-identical: the codec is a fixed point
        assert back.to_jsonl() == t.to_jsonl()

    def test_protocol_value_types_survive(self):
        t = TraceStore()
        t.record(0.0, "custom", 0, sig=b"\x00\xff\x10", pair=(1, "a"),
                 quorum=frozenset({3, 1, 2}), table={"k": (1, 2)},
                 nested=[(1,), {"x": b"z"}])
        back = TraceStore.from_jsonl(t.to_jsonl())
        ev = back.events()[0]
        assert ev.field("sig") == b"\x00\xff\x10"
        assert ev.field("pair") == (1, "a")
        assert ev.field("quorum") == frozenset({1, 2, 3})
        assert ev.field("table") == {"k": (1, 2)}
        assert ev.field("nested") == [(1,), {"x": b"z"}]

    def test_dataclass_and_opaque_fallbacks(self):
        t = TraceStore()
        t.record(0.0, "custom", 0, probe=_Probe(1, "a"), blob=_NotSerializable())
        back = TraceStore.from_jsonl(t.to_jsonl())
        ev = back.events()[0]
        assert ev.field("probe") == DataclassValue("_Probe", (1, "a"))
        assert ev.field("blob") == OpaqueValue("<probe object>")
        # stand-ins re-encode stably
        assert TraceStore.from_jsonl(back.to_jsonl()).to_jsonl() == back.to_jsonl()

    def test_import_preserves_indexes_and_rejects_disorder(self):
        t = build(random_events(8, count=50), retention=20)
        back = TraceStore.from_jsonl(t.to_jsonl())
        assert [ev.index for ev in back.events()] == list(range(30, 50))
        lines = t.to_jsonl().splitlines()
        shuffled = "\n".join([lines[1], lines[0]] + lines[2:])
        with pytest.raises(ConfigurationError, match="not increasing"):
            TraceStore.from_jsonl(shuffled)

    def test_from_jsonl_streams_through_observers(self):
        seen = []

        class Collector(TraceObserver):
            def on_event(self, ev):
                seen.append(ev.index)

        t = build(random_events(9, count=40))
        TraceStore.from_jsonl(t.to_jsonl(), observers=[Collector()])
        assert seen == list(range(40))

    def test_export_and_load_file(self, tmp_path):
        t = build(random_events(10, count=60))
        path = str(tmp_path / "run.jsonl")
        assert t.export_jsonl(path) == 60
        back = load_trace(path)
        assert back.events() == t.events()


class TestOfflineAnalysis:
    def test_trace_summary_counts(self):
        t = build(random_events(11, count=120))
        s = trace_summary(t)
        assert s["retained"] == s["total_recorded"] == 120
        assert s["evicted"] == 0
        assert sum(s["kinds"].values()) == 120
        assert sum(s["pids"].values()) == 120
        assert s["t_first"] == 0.0 and s["t_last"] == 119.0

    def test_format_trace_summary_renders_tables(self):
        t = build(random_events(12, count=50))
        out = format_trace_summary(t, title="my run")
        assert "my run" in out
        assert "events by kind" in out
        assert "events by pid" in out

    def test_replay_observers_offline(self, tmp_path):
        seen = []

        class Collector(TraceObserver):
            def on_event(self, ev):
                seen.append(ev.index)

        t = build(random_events(13, count=30))
        path = str(tmp_path / "run.jsonl")
        t.export_jsonl(path)
        replay_observers(load_trace(path), Collector())
        assert seen == list(range(30))


class TestCompatibilityAlias:
    def test_trace_is_the_indexed_store(self):
        assert Trace is TraceStore
