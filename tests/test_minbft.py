"""System tests for MinBFT replication."""

from __future__ import annotations

import pytest

from repro.consensus import build_minbft_system, check_replication
from repro.consensus.minbft import MinBFTReplica, PREPARE, USIG_WRAP
from repro.errors import ConfigurationError
from repro.sim import PartiallySynchronous


class TestHappyPath:
    def test_single_client(self):
        sim, reps, clients = build_minbft_system(f=1, n_clients=1,
                                                 ops_per_client=4, seed=1)
        sim.run(until=2000.0)
        n = len(reps)
        rep = check_replication(sim.trace, range(n), expected_ops={n: 4})
        rep.assert_ok()
        assert all(r.commits_executed == 4 for r in reps)

    def test_multiple_clients_interleave(self):
        sim, reps, clients = build_minbft_system(f=1, n_clients=3,
                                                 ops_per_client=3, seed=2)
        sim.run(until=4000.0)
        n = len(reps)
        rep = check_replication(
            sim.trace, range(n), expected_ops={n + c: 3 for c in range(3)}
        )
        rep.assert_ok()
        assert all(r.commits_executed == 9 for r in reps)

    def test_f2_five_replicas(self):
        sim, reps, clients = build_minbft_system(f=2, n_clients=1,
                                                 ops_per_client=3, seed=3)
        sim.run(until=3000.0)
        rep = check_replication(sim.trace, range(5), expected_ops={5: 3})
        rep.assert_ok()

    @pytest.mark.parametrize("app,expected", [
        ("counter", None), ("kv", None), ("bank", None),
    ])
    def test_every_app(self, app, expected):
        sim, reps, clients = build_minbft_system(f=1, n_clients=1,
                                                 ops_per_client=4, app=app, seed=4)
        sim.run(until=2000.0)
        n = len(reps)
        rep = check_replication(sim.trace, range(n), expected_ops={n: 4})
        rep.assert_ok()
        digests = {r.app.digest() for r in reps}
        assert len(digests) == 1  # identical state everywhere

    def test_replies_match_leader_state(self):
        sim, reps, clients = build_minbft_system(f=1, n_clients=1,
                                                 ops_per_client=3, seed=5)
        sim.run(until=2000.0)
        assert clients[0].results == [1, 3, 6]  # counter adds 1,2,3


class TestFaults:
    def test_backup_crash_harmless(self):
        sim, reps, clients = build_minbft_system(f=1, n_clients=1,
                                                 ops_per_client=4, seed=6)
        sim.crash_at(2, 1.0)
        sim.run(until=2000.0)
        rep = check_replication(sim.trace, [0, 1], expected_ops={3: 4})
        rep.assert_ok()

    def test_primary_crash_view_change(self):
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=5, seed=7,
            req_timeout=20.0, retry_timeout=60.0,
        )
        sim.crash_at(0, 2.0)
        sim.run(until=6000.0)
        rep = check_replication(sim.trace, [1, 2], expected_ops={3: 5})
        rep.assert_ok()
        assert all(r.view >= 1 for r in reps[1:])

    def test_two_successive_primary_crashes_f2(self):
        sim, reps, clients = build_minbft_system(
            f=2, n_clients=1, ops_per_client=8, seed=8,
            req_timeout=20.0, retry_timeout=60.0,
        )
        sim.crash_at(0, 2.0)
        # kill the view-1 primary right after it takes over (view change
        # completes around t=23 with these timeouts)
        sim.crash_at(1, 23.2)
        sim.run(until=20000.0)
        rep = check_replication(sim.trace, [2, 3, 4], expected_ops={5: 8})
        rep.assert_ok()
        assert all(r.view >= 2 for r in reps[2:])

    def test_primary_restart_mid_view_change(self):
        """The old primary reboots while the view change it caused is still
        in flight; it must rejoin in the new view and re-execute the
        committed prefix instead of wedging the group."""
        from repro.consensus.apps import make_app

        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=5, seed=20,
            req_timeout=20.0, retry_timeout=60.0,
        )
        sim.crash_at(0, 2.0)

        def factory():
            old = reps[0]
            fresh = MinBFTReplica(
                n=old.n, usig=old.usig,  # trusted hardware survives
                verifier=old.verifier, scheme=old.scheme, signer=old.signer,
                app=make_app("counter"),  # volatile state does not
                req_timeout=old.req_timeout,
            )
            reps[0] = fresh
            return fresh

        # with these timeouts the backups' VC-TIMER fires around t=22, so
        # the reboot lands in the middle of the view change window
        sim.restart_at(0, 22.0, factory=factory)
        sim.run(until=6000.0)
        rep = check_replication(sim.trace, [1, 2], expected_ops={3: 5})
        rep.assert_ok()
        assert sim.incarnation_of(0) == 1
        assert all(r.view >= 1 for r in reps)  # reborn primary included
        # the committed prefix reached the reborn replica
        assert reps[0].app.digest() == reps[1].app.digest()

    def test_partial_synchrony_pre_gst_chaos(self):
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=3, seed=9,
            adversary=PartiallySynchronous(gst=30.0, delta=0.5, pre_gst_slack=10.0),
            req_timeout=100.0, retry_timeout=200.0,
        )
        sim.run(until=4000.0)
        rep = check_replication(sim.trace, range(3), expected_ops={3: 3})
        rep.assert_ok()


class TestByzantineReplicas:
    def test_equivocating_primary_cannot_split_state(self):
        class EquivocatingPrimary(MinBFTReplica):
            """Two UIs for the same slot, split across replica groups."""

            def _propose_pending(self):
                if not self.is_primary or not self._pending:
                    return
                _key, request = sorted(self._pending.items())[0]
                m1 = (PREPARE, self.view, 1, request)
                u1 = self.usig.create_ui(m1)
                self.sent_log.append((m1, u1))
                m2 = (PREPARE, self.view, 1, request)
                u2 = self.usig.create_ui(m2)
                self.sent_log.append((m2, u2))
                for dst in range(self.n):
                    if dst <= self.f:
                        self.ctx.send(dst, (USIG_WRAP, m1, u1))
                    else:
                        self.ctx.send(dst, (USIG_WRAP, m2, u2))
                self._pending.clear()

        def factory(pid, **kw):
            return EquivocatingPrimary(**kw) if pid == 0 else MinBFTReplica(**kw)

        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=2, seed=10,
            req_timeout=20.0, retry_timeout=60.0, replica_factory=factory,
        )
        sim.declare_byzantine(0)
        sim.run(until=8000.0)
        rep = check_replication(sim.trace, [1, 2], expected_ops={3: 2})
        rep.assert_ok()

    def test_backup_sending_gapped_uis_is_ignored(self):
        class Gapper(MinBFTReplica):
            def on_start(self):
                # waste counters 1..3 silently, then talk normally: every
                # message it sends now has a gap and stays in holdback
                for _ in range(3):
                    self.usig.create_ui("wasted")

        def factory(pid, **kw):
            return Gapper(**kw) if pid == 2 else MinBFTReplica(**kw)

        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=3, seed=11,
            replica_factory=factory,
        )
        sim.declare_byzantine(2)
        sim.run(until=3000.0)
        # f+1 = 2 honest replicas suffice for certificates
        rep = check_replication(sim.trace, [0, 1], expected_ops={3: 3})
        rep.assert_ok()


class TestClientBehavior:
    def test_retransmission_answered_from_cache(self):
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=2, seed=12, retry_timeout=5.0,
        )
        sim.run(until=2000.0)
        rep = check_replication(sim.trace, range(3), expected_ops={3: 2})
        rep.assert_ok()
        # no duplicate executions even though the client may have retried
        assert all(r.commits_executed == 2 for r in reps)

    def test_client_latencies_recorded(self):
        sim, reps, clients = build_minbft_system(f=1, n_clients=1,
                                                 ops_per_client=3, seed=13)
        sim.run(until=2000.0)
        assert len(clients[0].latencies) == 3
        assert all(l > 0 for l in clients[0].latencies)


class TestConfiguration:
    def test_even_n_rejected(self):
        from repro.consensus.usig import USIG, USIGVerifier
        from repro.crypto import SignatureScheme
        from repro.hardware.trinc import TrincAuthority
        from repro.consensus.apps import make_app

        auth = TrincAuthority(4, seed=0)
        with pytest.raises(ConfigurationError):
            MinBFTReplica(
                n=4, usig=USIG(auth.trinket(0)), verifier=USIGVerifier(auth),
                scheme=SignatureScheme(4), signer=None, app=make_app("counter"),
            )

    def test_f_validated(self):
        with pytest.raises(ConfigurationError):
            build_minbft_system(f=0)
