"""Tests for the ingress pump/admission pipeline and the tenant client.

Two layers: pure unit tests drive :class:`IngressProcess` through a fake
context (exact control over time and inspection of every send/timer), and
integration tests run the full served system — replicas, ingress, tenant
fleet — through the simulator.
"""

from __future__ import annotations

import pytest

from repro.consensus.minbft import REPLY, REQUEST
from repro.errors import ConfigurationError, RetriesExhausted
from repro.faults.timeouts import FixedTimeout, RetryBudget
from repro.service import (
    BrownoutController,
    FairShare,
    IngressProcess,
    SVC_DONE,
    SVC_REJECT,
    SVC_REQ,
    TenantClient,
    TokenBucket,
    build_service_system,
    protected_profile,
    unprotected_profile,
)
from repro.sim.adversary import ReliableAsynchronous
from repro.sim.process import Process
from repro.sim.runner import Simulation


class FakeContext:
    """Just enough Context for driving an IngressProcess by hand."""

    def __init__(self):
        self.pid = 99
        self.now = 0.0
        self.seed = 0
        self.sent: list[tuple[int, tuple]] = []
        self.timers: dict[int, tuple[float, object]] = {}
        self.records: list[dict] = []
        self._next_timer = 0

    def send(self, dst, msg):
        self.sent.append((dst, msg))

    def set_timer(self, delay, tag):
        self._next_timer += 1
        self.timers[self._next_timer] = (self.now + delay, tag)
        return self._next_timer

    def cancel_timer(self, timer_id):
        self.timers.pop(timer_id, None)

    def record(self, kind, **fields):
        self.records.append({"kind": kind, **fields})

    def fire(self, tag, advance=0.0):
        """Fire one pending timer with ``tag``, consuming it (like the
        real scheduler does) before invoking the handler."""
        self.now += advance
        for timer_id, (_, t) in list(self.timers.items()):
            if t == tag:
                del self.timers[timer_id]
                return timer_id
        raise AssertionError(f"no pending timer {tag!r}")


def make_ingress(**kwargs) -> tuple[IngressProcess, FakeContext]:
    ingress = IngressProcess(replicas=(0, 1, 2), **kwargs)
    ctx = FakeContext()
    ingress._attach(ctx)
    return ingress, ctx


def req(tenant, req_id, op=("deposit", "a", 1)):
    return (SVC_REQ, tenant, req_id, op, f"sig-{tenant}-{req_id}")


def pump_tags(ctx):
    return [t for t in ctx.timers.values() if t[1] == IngressProcess.PUMP_TAG]


class TestIngressPump:
    def test_one_pump_timer_no_matter_the_backlog(self):
        ingress, ctx = make_ingress(proc_time=0.5)
        for i in range(5):
            ingress.on_message(4, req(4, i + 1))
        assert len(pump_tags(ctx)) == 1  # serialization point
        assert ingress.inbox_peak == 5 and ingress.pumped == 0

    def test_each_arrival_costs_pump_time_even_duplicates(self):
        ingress, ctx = make_ingress(proc_time=0.5)
        for _ in range(3):  # same request retransmitted thrice
            ingress.on_message(4, req(4, 1))
        pump(ingress, ctx, n=3, dt=0.5)
        assert ingress.pumped == 3
        assert ingress.admitted == 1
        assert ingress.dup_discarded == 2  # dedup happens AFTER pump cost

    def test_pump_idles_when_inbox_drains(self):
        ingress, ctx = make_ingress()
        ingress.on_message(4, req(4, 1))
        pump(ingress, ctx)
        assert not pump_tags(ctx)
        ingress.on_message(4, req(4, 2))  # re-arms on the next arrival
        assert len(pump_tags(ctx)) == 1

    def test_rejection_is_cheaper_than_service(self):
        # saying no is a counter check: after a typed reject the pump
        # re-arms at reject_time (proc_time/8 by default), after an
        # admission (or a dup) at the full proc_time
        ingress, ctx = make_ingress(
            proc_time=0.8, bucket=TokenBucket(rate=0.001, burst=1.0)
        )
        for i in (1, 2, 3):
            ingress.on_message(4, req(4, i))

        def next_pump_delay():
            ((due, _),) = pump_tags(ctx)
            return due - ctx.now

        pump(ingress, ctx, dt=0.8)  # admitted: full cost ahead
        assert ingress.admitted == 1
        assert next_pump_delay() == pytest.approx(0.8)
        pump(ingress, ctx, dt=0.8)  # bucket empty: rejected, cheap
        assert ingress.rejects == {"rate_limited": 1}
        assert next_pump_delay() == pytest.approx(0.1)

    def test_reject_time_override_and_validation(self):
        ingress, _ = make_ingress(proc_time=0.4, reject_time=0.05)
        assert ingress.reject_time == 0.05
        with pytest.raises(ConfigurationError):
            make_ingress(reject_time=0.0)

    def test_done_acks_bypass_the_pump(self):
        ingress, ctx = make_ingress()
        ingress.on_message(4, req(4, 1))
        pump(ingress, ctx)
        ingress.on_message(4, (SVC_DONE, 4, 1, 1.0))
        assert ingress.completed == 1
        assert ingress.pumped == 1  # the ack did not consume pump capacity

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IngressProcess(replicas=(0,), proc_time=0.0)
        with pytest.raises(ConfigurationError):
            IngressProcess(replicas=(0,), max_inflight=0)
        with pytest.raises(ConfigurationError):
            IngressProcess(replicas=(0,), lease_timeout=0.0)


def pump(ingress, ctx, n=1, dt=0.25):
    for _ in range(n):
        ctx.fire(IngressProcess.PUMP_TAG, advance=dt)
        ingress.on_timer(IngressProcess.PUMP_TAG)


def rejects_to(ctx, tenant):
    return [m for d, m in ctx.sent if d == tenant and m[0] == SVC_REJECT]


class TestAdmissionPipeline:
    def test_admitted_request_broadcast_to_all_replicas(self):
        ingress, ctx = make_ingress()
        ingress.on_message(4, req(4, 1, op=("deposit", "a", 5)))
        pump(ingress, ctx)
        requests = [(d, m) for d, m in ctx.sent if m[0] == REQUEST]
        assert [d for d, _ in requests] == [0, 1, 2]
        assert requests[0][1] == (REQUEST, 4, 1, ("deposit", "a", 5),
                                  "sig-4-1")
        assert ingress.dispatched == 1

    def test_queue_full_rejects_with_typed_reason(self):
        ingress, ctx = make_ingress(queue_limit=1, max_inflight=1)
        for i in range(3):
            ingress.on_message(4 + i, req(4 + i, 1))
        pump(ingress, ctx, n=3)
        # one dispatched, one queued, the third shed
        assert ingress.dispatched == 1 and ingress.admitted == 2
        (reject,) = rejects_to(ctx, 6)
        assert reject[2] == "queue_full"
        assert reject[3] >= 1.0  # retry_after hint present
        assert ingress.rejects == {"queue_full": 1}

    def test_fair_share_isolates_tenants(self):
        ingress, ctx = make_ingress(fair=FairShare(per_tenant=1),
                                    max_inflight=1)
        ingress.on_message(4, req(4, 1))
        ingress.on_message(4, req(4, 2))  # same tenant, second outstanding
        ingress.on_message(5, req(5, 1))  # different tenant
        pump(ingress, ctx, n=3)
        (reject,) = rejects_to(ctx, 4)
        assert reject[1] == 2 and reject[2] == "fair_share"
        assert not rejects_to(ctx, 5)
        assert ingress.admitted == 2

    def test_token_bucket_rejects_with_refill_hint(self):
        ingress, ctx = make_ingress(bucket=TokenBucket(rate=1.0, burst=1.0))
        ingress.on_message(4, req(4, 1))
        ingress.on_message(5, req(5, 1))
        pump(ingress, ctx, n=2, dt=0.1)
        (reject,) = rejects_to(ctx, 5)
        assert reject[2] == "rate_limited"
        assert 0.0 < reject[3] <= 1.0  # time to the next token

    def test_brownout_sheds_writes_serves_reads(self):
        brown = BrownoutController(depth_high=5.0, alpha=1.0)
        ingress, ctx = make_ingress(brownout=brown)
        # depth between high and high*open_factor: BROWNOUT, not OPEN
        brown.observe(0.0, 8)
        assert brown.sheds_writes() and not brown.sheds_all()
        ingress.on_message(4, req(4, 1, op=("deposit", "a", 1)))
        ingress.on_message(5, req(5, 1, op=("balance", "a")))
        pump(ingress, ctx, n=2, dt=0.01)  # tiny dt: EWMA stays hot
        (reject,) = rejects_to(ctx, 4)
        assert reject[2] == "brownout_write"
        assert not rejects_to(ctx, 5)  # the read passed
        assert ingress.admitted == 1

    def test_open_mode_sheds_everything(self):
        brown = BrownoutController(depth_high=5.0, alpha=1.0)
        ingress, ctx = make_ingress(brownout=brown)
        brown.observe(0.0, 100)  # past depth_high * open_factor
        ingress.on_message(5, req(5, 1, op=("balance", "a")))
        pump(ingress, ctx, dt=0.01)
        (reject,) = rejects_to(ctx, 5)
        assert reject[2] == "overload"  # even reads shed in OPEN

    def test_completed_watermark_dedups_after_slot_freed(self):
        ingress, ctx = make_ingress()
        ingress.on_message(4, req(4, 1))
        pump(ingress, ctx)
        ingress.on_message(4, (SVC_DONE, 4, 1, 1.0))
        ingress.on_message(4, req(4, 1))  # late retransmission
        pump(ingress, ctx)
        assert ingress.dup_discarded == 1
        assert ingress.dispatched == 1  # not re-dispatched

    def test_rejections_recorded_in_trace(self):
        ingress, ctx = make_ingress(queue_limit=1, max_inflight=1)
        for i in range(3):
            ingress.on_message(4 + i, req(4 + i, 1))
        pump(ingress, ctx, n=3)
        events = [r for r in ctx.records if r.get("event") == "svc_reject"]
        assert events == [{
            "kind": "custom", "event": "svc_reject", "tenant": 6,
            "req_id": 1, "reason": "queue_full",
        }]


class TestDispatchAndLeases:
    def test_max_inflight_bounds_concurrent_dispatch(self):
        ingress, ctx = make_ingress(max_inflight=2)
        for i in range(4):
            ingress.on_message(4 + i, req(4 + i, 1))
        pump(ingress, ctx, n=4)
        assert ingress.dispatched == 2
        assert len(ingress.queue) == 2

    def test_completion_frees_the_slot(self):
        ingress, ctx = make_ingress(max_inflight=1)
        ingress.on_message(4, req(4, 1))
        ingress.on_message(5, req(5, 1))
        pump(ingress, ctx, n=2)
        assert ingress.dispatched == 1
        ingress.on_message(4, (SVC_DONE, 4, 1, 0.5))
        assert ingress.dispatched == 2  # the queued request went out

    def test_lease_expiry_frees_a_lost_slot(self):
        ingress, ctx = make_ingress(max_inflight=1, lease_timeout=10.0)
        ingress.on_message(4, req(4, 1))
        ingress.on_message(5, req(5, 1))
        pump(ingress, ctx, n=2)
        ctx.now += 10.0
        ingress.on_timer((IngressProcess.LEASE_TAG, 4, 1))
        assert ingress.lease_expired == 1
        assert ingress.dispatched == 2
        # a late ack for the expired request must not double-free
        ingress.on_message(4, (SVC_DONE, 4, 1, 99.0))
        assert ingress.completed == 0

    def test_service_stats_shape(self):
        ingress, ctx = make_ingress(queue_limit=1, max_inflight=1,
                                    brownout=BrownoutController(10.0))
        for i in range(3):
            ingress.on_message(4 + i, req(4 + i, 1))
        pump(ingress, ctx, n=3)
        stats = ingress.service_stats()
        assert stats["pumped"] == 3
        assert stats["shed_total"] == 1 and stats["shed_queue_full"] == 1
        assert stats["final_mode"] == 0
        assert all(isinstance(v, (int, float)) for v in stats.values())


class _SilentSink(Process):
    """An ingress-shaped black hole: accepts everything, answers nothing."""

    def on_message(self, src, msg):
        pass


class _AlwaysReject(Process):
    """An ingress that sheds every request with a fixed retry_after."""

    def on_message(self, src, msg):
        if isinstance(msg, tuple) and msg and msg[0] == SVC_REQ:
            self.ctx.send(src, (SVC_REJECT, msg[2], "overload", 2.0))


def _lone_tenant(ingress_stub, **kwargs):
    from repro.crypto.signatures import SignatureScheme

    tenant = TenantClient(
        ingress=0,
        replicas=(),
        reply_quorum=1,
        ops=[("deposit", "a", 1), ("deposit", "a", 2)],
        think_time=0.0,
        **kwargs,
    )
    tenant.signer = SignatureScheme(2, seed=0).signer(1)
    sim = Simulation([ingress_stub, tenant],
                     ReliableAsynchronous(0.01, 0.1), seed=3)
    return sim, tenant


class TestTenantClient:
    def test_budget_exhaustion_is_a_typed_terminal_outcome(self):
        sim, tenant = _lone_tenant(
            _SilentSink(),
            timeout_policy=FixedTimeout(1.0),
            retry_budget=RetryBudget(ratio=0.0, min_reserve=1.0),
        )
        sim.run(until=60.0)
        # reserve of 1: each op gets exactly one retry, then abandonment
        assert len(tenant.failures) == 2
        assert all(isinstance(f, RetriesExhausted) for f in tenant.failures)
        assert tenant.failures[0].attempts == 2
        assert tenant.done and tenant.results == []
        failed = [e for e in sim.trace.events()
                  if e.field("event") == "svc_failed"]
        assert [e.field("reason") for e in failed] == ["retries_exhausted"] * 2

    def test_unbudgeted_tenant_retries_forever(self):
        sim, tenant = _lone_tenant(
            _SilentSink(), timeout_policy=FixedTimeout(1.0, backoff=1.0)
        )
        sim.run(until=60.0)
        assert tenant.failures == [] and not tenant.done
        assert tenant.retransmissions >= 50  # ~1/s against a silent peer

    def test_backpressure_pauses_instead_of_retrying(self):
        sim, tenant = _lone_tenant(
            _AlwaysReject(),
            timeout_policy=FixedTimeout(1.0),
            honor_backpressure=True,
        )
        sim.run(until=60.0)
        assert tenant.rejections > 0
        # every resubmission waited out retry_after (2s) + jitter rather
        # than the 1s retry timer: the reject/resubmit cycle is strictly
        # slower than the timeout cycle would have been
        assert tenant.rejections <= 30
        assert tenant.retransmissions == 0  # retry timer never fired

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TenantClient(ingress=0, replicas=(0,), reply_quorum=0, ops=[])


class TestServedSystemIntegration:
    def _run(self, seed, profile=None, until=400.0):
        sim, replicas, ingress, tenants = build_service_system(
            profile=profile or protected_profile(
                think_time=1.0, start_spread=2.0
            ),
            n_tenants=3,
            ops_per_tenant=4,
            seed=seed,
        )
        stats = sim.run(until=until)
        return sim, ingress, tenants, stats

    def test_all_ops_complete_below_saturation(self):
        _, ingress, tenants, stats = self._run(seed=5)
        assert all(t.done for t in tenants)
        assert sum(len(t.results) for t in tenants) == 12
        assert ingress.completed == 12
        assert not any(t.failures for t in tenants)

    def test_runstats_service_counters_exported(self):
        _, ingress, _, stats = self._run(seed=5)
        assert stats.service is not None
        assert stats.service["completed"] == 12
        assert stats.service["pumped"] >= stats.service["admitted"]
        assert stats.service == ingress.service_stats()
        assert stats.service is stats.deterministic_fields()[-1]

    def test_runstats_service_none_without_a_serving_layer(self):
        sim = Simulation([_SilentSink()], ReliableAsynchronous(0.01, 0.1))
        stats = sim.run(until=1.0)
        assert stats.service is None

    def test_same_seed_same_run_bit_identical(self):
        _, ingress_a, tenants_a, stats_a = self._run(seed=11)
        _, ingress_b, tenants_b, stats_b = self._run(seed=11)
        assert stats_a.deterministic_fields() == stats_b.deterministic_fields()
        assert [t.latencies for t in tenants_a] == [t.latencies for t in tenants_b]
        assert ingress_a.service_stats() == ingress_b.service_stats()

    def test_different_seeds_diverge(self):
        _, _, tenants_a, _ = self._run(seed=11)
        _, _, tenants_b, _ = self._run(seed=12)
        assert [t.latencies for t in tenants_a] != [t.latencies for t in tenants_b]

    def test_replies_come_from_replicas_not_the_ingress(self):
        from repro.faults.channel import RC_DATA

        def inner(msg):
            # unwrap the reliable channel's (DATA, inc, id, payload) frame
            if isinstance(msg, tuple) and len(msg) == 4 and msg[0] == RC_DATA:
                return msg[3]
            return msg

        sim, ingress, tenants, _ = self._run(seed=5)
        replies = [e for e in sim.trace.events(kind="deliver")
                   if isinstance(inner(e.field("msg")), tuple)
                   and inner(e.field("msg"))[0] == REPLY]
        assert replies  # replicas answered
        # every reply went straight replica -> tenant: never via the
        # ingress (pid 3), which is an overload boundary only
        assert all(e.field("src") < 3 and e.pid >= 4 for e in replies)

    def test_profiles_disable_and_enable_policies(self):
        protected = protected_profile().make_ingress((0, 1, 2))
        assert protected.bucket and protected.fair and protected.codel
        assert protected.brownout and protected.queue.maxlen == 24
        unprotected = unprotected_profile().make_ingress((0, 1, 2))
        assert unprotected.bucket is None and unprotected.fair is None
        assert unprotected.codel is None and unprotected.brownout is None
        assert unprotected.queue.maxlen is None
