"""Tests for Algorithm 1: SRB from unidirectional rounds."""

from __future__ import annotations

import pytest

from repro.core.srb import check_srb
from repro.core.srb_from_uni import (
    SRBFromUnidirectional,
    build_sm_srb_system,
    copy_domain,
    l1_domain,
    val_domain,
    validate_copies,
    validate_l2,
)
from repro.crypto import SignatureScheme
from repro.errors import ConfigurationError


def run_happy(n, t, messages, seed, crash=None, horizon=500.0):
    sim, procs, scheme = build_sm_srb_system(n=n, t=t, sender=0, seed=seed)
    for i, m in enumerate(messages):
        sim.at(0.5 + 0.3 * i, lambda m=m: procs[0].broadcast(m))
    if crash is not None:
        pid, when = crash
        sim.crash_at(pid, when)
    sim.run(until=horizon)
    return sim, procs, scheme


class TestHappyPath:
    def test_single_message(self):
        sim, procs, _ = run_happy(3, 1, ["hello"], seed=1)
        rep = check_srb(sim.trace, 0, range(3))
        rep.assert_ok()
        assert len(rep.deliveries) == 3

    def test_stream_in_order(self):
        sim, procs, _ = run_happy(3, 1, ["a", "b", "c", "d"], seed=2)
        rep = check_srb(sim.trace, 0, range(3))
        rep.assert_ok()
        per_proc = {}
        for d in rep.deliveries:
            per_proc.setdefault(d.receiver, []).append((d.seq, d.value))
        for p, seq in per_proc.items():
            assert seq == [(1, "a"), (2, "b"), (3, "c"), (4, "d")]

    def test_larger_system(self):
        sim, procs, _ = run_happy(7, 3, ["x", "y"], seed=3, horizon=800.0)
        rep = check_srb(sim.trace, 0, range(7))
        rep.assert_ok()
        assert len(rep.deliveries) == 14

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_seed_sweep(self, seed):
        sim, procs, _ = run_happy(5, 2, ["m1", "m2"], seed=seed)
        check_srb(sim.trace, 0, range(5)).assert_ok()


class TestCrashFaults:
    def test_one_crash_at_t2(self):
        sim, procs, _ = run_happy(5, 2, ["a", "b"], seed=4, crash=(4, 1.0))
        rep = check_srb(sim.trace, 0, range(4))
        rep.assert_ok()

    def test_t_crashes(self):
        sim, procs, scheme = build_sm_srb_system(n=5, t=2, sender=0, seed=5)
        sim.at(0.5, lambda: procs[0].broadcast("survives"))
        sim.crash_at(3, 1.0)
        sim.crash_at(4, 2.0)
        sim.run(until=800.0)
        rep = check_srb(sim.trace, 0, range(3))
        rep.assert_ok()
        assert len(rep.deliveries) == 3

    def test_non_sender_payloads_before_crash_harmless(self):
        sim, procs, _ = run_happy(5, 2, ["a"], seed=6, crash=(2, 0.6))
        rep = check_srb(sim.trace, 0, [0, 1, 3, 4])
        rep.assert_ok()


class TestByzantineSender:
    def _equiv_factory(self, t):
        class EquivSender(SRBFromUnidirectional):
            def equivocate(self, m1, m2):
                s1 = self.signer.sign(val_domain(self.pid, 1, m1))
                s2 = self.signer.sign(val_domain(self.pid, 1, m2))
                self.ctx.record("bcast", seq=1, value=m1)
                self.ctx.record("bcast", seq=1, value=m2)
                self.rounds.post(("VAL", 1, m1, s1))
                self.rounds.post(("VAL", 1, m2, s2))

        def factory(pid, transport, scheme, signer):
            cls = EquivSender if pid == 0 else SRBFromUnidirectional
            return cls(transport, 0, t, scheme, signer)

        return factory

    def test_double_signing_never_splits_correct_processes(self):
        sim, procs, _ = build_sm_srb_system(
            n=5, t=2, sender=0, seed=7, process_factory=self._equiv_factory(2)
        )
        sim.declare_byzantine(0)
        sim.at(0.5, lambda: procs[0].equivocate("good", "evil"))
        sim.run(until=500.0)
        rep = check_srb(sim.trace, 0, [1, 2, 3, 4], sender_correct=False)
        assert not rep.agreement_violations
        assert not rep.sequencing_violations
        assert not rep.integrity_violations

    def test_silent_sender_no_delivery(self):
        sim, procs, _ = build_sm_srb_system(n=3, t=1, sender=0, seed=8)
        sim.declare_byzantine(0)
        sim.crash(0)
        sim.run(until=200.0)
        rep = check_srb(sim.trace, 0, [1, 2], sender_correct=False)
        assert rep.ok and not rep.deliveries


class TestValidation:
    def test_validate_copies_needs_distinct_signers(self):
        scheme = SignatureScheme(4, seed=1)
        signers = [scheme.signer(p) for p in range(4)]
        sig = signers[1].sign(copy_domain(0, 1, "m"))
        copies = ((1, sig), (1, sig))
        assert not validate_copies(scheme, 0, 1, "m", copies, t=1)
        sig2 = signers[2].sign(copy_domain(0, 1, "m"))
        assert validate_copies(scheme, 0, 1, "m", ((1, sig), (2, sig2)), t=1)

    def test_validate_copies_wrong_value(self):
        scheme = SignatureScheme(4, seed=2)
        s1 = scheme.signer(1).sign(copy_domain(0, 1, "m"))
        s2 = scheme.signer(2).sign(copy_domain(0, 1, "m"))
        assert not validate_copies(scheme, 0, 1, "OTHER", ((1, s1), (2, s2)), t=1)

    def test_validate_l2_rejects_garbage(self):
        scheme = SignatureScheme(4, seed=3)
        assert validate_l2(scheme, 0, "junk", 1) is None
        assert validate_l2(scheme, 0, ("L2", 0, "m", None, ()), 1) is None

    def test_validate_l2_full_proof(self):
        scheme = SignatureScheme(4, seed=4)
        signers = [scheme.signer(p) for p in range(4)]
        k, m, t = 1, "value", 1
        sig_s = signers[0].sign(val_domain(0, k, m))
        copies = tuple(
            (j, signers[j].sign(copy_domain(0, k, m))) for j in (1, 2)
        )
        l1items = tuple(
            (b, copies, signers[b].sign(l1_domain(0, k, m))) for b in (1, 2)
        )
        proof = ("L2", k, m, sig_s, l1items)
        assert validate_l2(scheme, 0, proof, t) == (k, m)
        # too few builders
        assert validate_l2(scheme, 0, ("L2", k, m, sig_s, l1items[:1]), t) is None

    def test_builder_signature_binds_value(self):
        """An L1 signature for value m must not certify value m'."""
        scheme = SignatureScheme(4, seed=5)
        signers = [scheme.signer(p) for p in range(4)]
        k, t = 1, 1
        sig_s = signers[0].sign(val_domain(0, k, "m2"))
        copies_m2 = tuple(
            (j, signers[j].sign(copy_domain(0, k, "m2"))) for j in (1, 2)
        )
        # builder signatures made for a DIFFERENT value m1
        l1items = tuple(
            (b, copies_m2, signers[b].sign(l1_domain(0, k, "m1"))) for b in (1, 2)
        )
        assert validate_l2(scheme, 0, ("L2", k, "m2", sig_s, l1items), t) is None


class TestConfiguration:
    def test_bound_enforced(self):
        with pytest.raises(ConfigurationError, match="2t\\+1"):
            build_sm_srb_system(n=4, t=2)

    def test_sender_range(self):
        with pytest.raises(ConfigurationError):
            build_sm_srb_system(n=3, t=1, sender=5)

    def test_non_sender_cannot_broadcast(self):
        sim, procs, _ = build_sm_srb_system(n=3, t=1, sender=0, seed=9)
        sim.run(until=1.0)
        with pytest.raises(ConfigurationError):
            procs[1].broadcast("nope")
