"""Tests for MinBFT's tamper-evident view-change logs."""

from __future__ import annotations

import pytest

from repro.consensus.usig import USIG, USIGVerifier
from repro.consensus.viewchange import (
    SlotCandidate,
    compute_reproposals,
    extract_candidates,
    verify_log,
)
from repro.hardware.trinc import TrincAuthority


@pytest.fixture
def env():
    auth = TrincAuthority(3, seed=17)
    usigs = {p: USIG(auth.trinket(p)) for p in range(3)}
    verifier = USIGVerifier(auth)
    return usigs, verifier


def sent_log(usig, messages):
    return tuple((m, usig.create_ui(m)) for m in messages)


class TestVerifyLog:
    def test_full_log_verifies(self, env):
        usigs, verifier = env
        log = sent_log(usigs[0], [("PREPARE", 0, 1, "req"), ("COMMIT", 0, 2, "r", None)])
        entries = verify_log(verifier, 0, log, end_counter=3)
        assert entries is not None and len(entries) == 2

    def test_omission_detected(self, env):
        """Dropping an entry breaks the consecutive-counter check — the
        property MinBFT's n=2f+1 view change rests on."""
        usigs, verifier = env
        log = sent_log(usigs[0], ["m1", "m2", "m3"])
        assert verify_log(verifier, 0, log[:2], end_counter=4) is None
        assert verify_log(verifier, 0, (log[0], log[2]), end_counter=3) is None

    def test_alteration_detected(self, env):
        usigs, verifier = env
        log = sent_log(usigs[0], ["m1", "m2"])
        tampered = ((log[0][0], log[0][1]), ("EVIL", log[1][1]))
        assert verify_log(verifier, 0, tampered, end_counter=3) is None

    def test_wrong_replica_detected(self, env):
        usigs, verifier = env
        log = sent_log(usigs[0], ["m1"])
        assert verify_log(verifier, 1, log, end_counter=2) is None

    def test_reordering_detected(self, env):
        usigs, verifier = env
        log = sent_log(usigs[0], ["m1", "m2"])
        assert verify_log(verifier, 0, (log[1], log[0]), end_counter=3) is None

    def test_end_counter_mismatch(self, env):
        usigs, verifier = env
        log = sent_log(usigs[0], ["m1"])
        assert verify_log(verifier, 0, log, end_counter=5) is None

    def test_junk_shapes(self, env):
        _, verifier = env
        assert verify_log(verifier, 0, "junk", 1) is None
        assert verify_log(verifier, 0, (("m",),), 2) is None


class TestCandidateExtraction:
    def test_prepare_and_commit_claims(self, env):
        usigs, verifier = env
        from repro.consensus.usig import UI

        prep_ui_msg = ("PREPARE", 0, 1, "reqA")
        log = sent_log(usigs[0], [prep_ui_msg])
        entries = verify_log(verifier, 0, log, 2)
        cands = extract_candidates(entries)
        assert cands[1].request == "reqA" and cands[1].view == 0

    def test_higher_view_beats(self):
        a = SlotCandidate(view=1, prepare_counter=9, request="old")
        b = SlotCandidate(view=2, prepare_counter=1, request="new")
        assert b.beats(a) and not a.beats(b)

    def test_lower_counter_beats_within_view(self):
        """The UI-order-first PREPARE is the one correct replicas accepted."""
        first = SlotCandidate(view=1, prepare_counter=3, request="first")
        second = SlotCandidate(view=1, prepare_counter=4, request="second")
        assert first.beats(second) and not second.beats(first)

    def test_compute_reproposals_merges_logs(self, env):
        usigs, verifier = env
        log0 = sent_log(usigs[0], [("PREPARE", 0, 1, "r1"), ("PREPARE", 0, 2, "r2")])
        e0 = verify_log(verifier, 0, log0, 3)
        # replica 1's log carries a commit for slot 2 only
        prepare_ui = e0[1][1] if isinstance(e0[1], tuple) else e0[1].ui
        log1 = sent_log(usigs[1], [("COMMIT", 0, 2, "r2", e0[1].ui)])
        e1 = verify_log(verifier, 1, log1, 2)
        merged = compute_reproposals({0: e0, 1: e1})
        assert set(merged) == {1, 2}
        assert merged[1].request == "r1" and merged[2].request == "r2"
