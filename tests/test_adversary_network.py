"""Tests for adversaries, the network ledger, and fairness audits."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, PropertyViolation
from repro.faults import BurstWindow, ChaosAdversary, LossyAsynchronous
from repro.sim import (
    DuplicatingAsynchronous,
    LinkRule,
    LockStepSynchronous,
    PartiallySynchronous,
    PartitionAdversary,
    Process,
    ReliableAsynchronous,
    ScriptedAdversary,
    Simulation,
)


class Sender(Process):
    """Sends one tagged message to every other process at start."""

    def __init__(self):
        super().__init__()
        self.received = []

    def on_start(self):
        self.ctx.broadcast(("M", self.pid), include_self=False)

    def on_message(self, src, msg):
        self.received.append((self.ctx.now, src))


def deliveries(sim, dst):
    return [(ev.field("src"), ev.time) for ev in sim.trace.message_deliveries(dst)]


class TestReliableAsynchronous:
    def test_all_delivered_within_bounds(self):
        procs = [Sender() for _ in range(4)]
        sim = Simulation(procs, ReliableAsynchronous(0.2, 0.9), seed=1)
        sim.run_to_quiescence()
        assert sim.network.messages_delivered == 12
        for ev in sim.trace.message_deliveries():
            assert 0.2 <= ev.time <= 0.9

    def test_fairness_audit_passes(self):
        procs = [Sender() for _ in range(3)]
        sim = Simulation(procs, ReliableAsynchronous(), seed=2)
        sim.run_to_quiescence()
        sim.network.assert_fair_for(range(3))

    def test_invalid_delay_range(self):
        with pytest.raises(ConfigurationError):
            ReliableAsynchronous(1.0, 0.5)


class TestLockStep:
    def test_exact_delta(self):
        procs = [Sender() for _ in range(3)]
        sim = Simulation(procs, LockStepSynchronous(delta=2.5), seed=0)
        sim.run_to_quiescence()
        assert all(ev.time == 2.5 for ev in sim.trace.message_deliveries())


class TestPartiallySynchronous:
    def test_pre_gst_messages_arrive_after_gst(self):
        procs = [Sender() for _ in range(3)]
        sim = Simulation(procs, PartiallySynchronous(gst=10.0, delta=1.0), seed=3)
        sim.run_to_quiescence()
        for ev in sim.trace.message_deliveries():
            assert ev.time >= 10.0

    class LateSender(Sender):
        def on_start(self):
            self.ctx.set_timer(20.0, "go")

        def on_timer(self, tag):
            self.ctx.broadcast(("M", self.pid), include_self=False)

    def test_post_gst_messages_bounded_by_delta(self):
        procs = [self.LateSender() for _ in range(3)]
        sim = Simulation(procs, PartiallySynchronous(gst=10.0, delta=1.0), seed=4)
        sim.run_to_quiescence()
        for ev in sim.trace.message_deliveries():
            assert 20.0 <= ev.time <= 21.0


class TestScripted:
    def test_withhold_records_ledger(self):
        adv = ScriptedAdversary(base_delay=0.1).withhold([0], [1])
        procs = [Sender() for _ in range(3)]
        sim = Simulation(procs, adv, seed=5)
        sim.run_to_quiescence()
        held = sim.network.withheld_between([0], [1])
        assert len(held) == 1
        assert deliveries(sim, 1) == [(2, 0.1)]

    def test_fairness_audit_fails_on_withheld(self):
        adv = ScriptedAdversary().withhold([0], [1])
        procs = [Sender() for _ in range(3)]
        sim = Simulation(procs, adv, seed=5)
        sim.run_to_quiescence()
        with pytest.raises(PropertyViolation, match="network-fairness"):
            sim.network.assert_fair_for(range(3))

    def test_time_windowed_rule(self):
        class TwoPhase(Sender):
            def on_start(self):
                self.ctx.broadcast(("early", self.pid), include_self=False)
                self.ctx.set_timer(10.0, "late")

            def on_timer(self, tag):
                self.ctx.broadcast(("late", self.pid), include_self=False)

        adv = ScriptedAdversary(base_delay=0.1)
        adv.add_rule(LinkRule([0], [1], None, start=0.0, end=5.0))
        procs = [TwoPhase() for _ in range(2)]
        sim = Simulation(procs, adv, seed=6)
        sim.run_to_quiescence()
        got = [ev.field("msg")[0] for ev in sim.trace.message_deliveries(1)]
        assert got == ["late"]

    def test_first_matching_rule_wins(self):
        adv = ScriptedAdversary(base_delay=0.1)
        adv.add_rule(LinkRule([0], [1], 5.0))
        adv.add_rule(LinkRule([0], [1], None))
        procs = [Sender() for _ in range(2)]
        sim = Simulation(procs, adv, seed=7)
        sim.run_to_quiescence()
        assert deliveries(sim, 1) == [(0, 5.0)]


class TestPartition:
    def test_permanent_partition_blocks_cross_traffic(self):
        adv = PartitionAdversary([[0, 1], [2, 3]])
        procs = [Sender() for _ in range(4)]
        sim = Simulation(procs, adv, seed=8)
        sim.run_to_quiescence()
        for ev in sim.trace.message_deliveries():
            src, dst = ev.field("src"), ev.pid
            assert (src < 2) == (dst < 2)
        assert len(sim.network.withheld) == 8

    def test_healing_partition_delivers_late(self):
        adv = PartitionAdversary([[0, 1], [2, 3]], heal_at=50.0)
        procs = [Sender() for _ in range(4)]
        sim = Simulation(procs, adv, seed=9)
        sim.run_to_quiescence()
        cross = [
            ev for ev in sim.trace.message_deliveries()
            if (ev.field("src") < 2) != (ev.pid < 2)
        ]
        assert len(cross) == 8
        assert all(ev.time >= 50.0 for ev in cross)

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionAdversary([[0, 1], [1, 2]])

    def test_single_group_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionAdversary([[0, 1]])

    def test_no_messages_lost_across_heal(self):
        """Every pre-heal cross-partition message is delivered, exactly once,
        at the heal time — healing releases, it does not drop or duplicate."""
        adv = PartitionAdversary([[0, 1], [2, 3]], heal_at=30.0)
        procs = [Sender() for _ in range(4)]
        sim = Simulation(procs, adv, seed=21)
        sim.run_to_quiescence()
        assert sim.network.messages_delivered == 12
        assert not sim.network.withheld
        by_link = {}
        for ev in sim.trace.message_deliveries():
            by_link.setdefault((ev.field("src"), ev.pid), []).append(ev.time)
        assert all(len(times) == 1 for times in by_link.values())
        sim.network.assert_fair_for(range(4))


class TestDeliveryStats:
    def test_duplicates_counted_separately(self):
        adv = DuplicatingAsynchronous(dup_probability=1.0, max_copies=2)
        procs = [Sender() for _ in range(3)]
        sim = Simulation(procs, adv, seed=11)
        sim.run_to_quiescence()
        assert sim.network.messages_sent == 6
        assert sim.network.messages_delivered == 6
        assert sim.network.duplicates_delivered == 6
        assert sim.network.delivery_ratio == 1.0

    def test_delivery_ratio_reflects_loss(self):
        adv = LossyAsynchronous(drop_probability=1.0)
        procs = [Sender() for _ in range(3)]
        sim = Simulation(procs, adv, seed=12)
        sim.run_to_quiescence()
        assert sim.network.messages_delivered == 0
        assert sim.network.delivery_ratio == 0.0
        assert len(sim.network.withheld) == 6

    def test_fairness_violation_truncates_long_messages(self):
        class BigSender(Sender):
            def on_start(self):
                self.ctx.broadcast(("blob", "x" * 500), include_self=False)

        adv = ScriptedAdversary().withhold([0], [1])
        sim = Simulation([BigSender() for _ in range(2)], adv, seed=13)
        sim.run_to_quiescence()
        with pytest.raises(PropertyViolation) as exc:
            sim.network.assert_fair_for(range(2))
        assert "..." in str(exc.value)
        assert len(str(exc.value)) < 300


class TestLossyAsynchronous:
    def test_link_drop_overrides_baseline(self):
        adv = LossyAsynchronous(drop_probability=0.0, link_drop={(0, 1): 1.0})
        procs = [Sender() for _ in range(3)]
        sim = Simulation(procs, adv, seed=14)
        sim.run_to_quiescence()
        assert adv.messages_dropped == 1
        assert [w.dst for w in sim.network.withheld] == [1]
        assert sim.network.messages_delivered == 5

    def test_burst_window_only_drops_inside(self):
        class TwoPhase(Sender):
            def on_start(self):
                self.ctx.broadcast(("early", self.pid), include_self=False)
                self.ctx.set_timer(50.0, "late")

            def on_timer(self, tag):
                self.ctx.broadcast(("late", self.pid), include_self=False)

        adv = LossyAsynchronous(
            drop_probability=0.0,
            bursts=[BurstWindow(start=0.0, end=10.0, drop=1.0)],
        )
        procs = [TwoPhase() for _ in range(3)]
        sim = Simulation(procs, adv, seed=15)
        sim.run_to_quiescence()
        delivered = [ev.field("msg")[0] for ev in sim.trace.message_deliveries()]
        assert delivered == ["late"] * 6
        assert adv.messages_dropped == 6

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            LossyAsynchronous(drop_probability=1.5)
        with pytest.raises(ConfigurationError):
            LossyAsynchronous(link_drop={(0, 1): -0.1})


def _delivery_schedule(sim):
    return [
        (ev.time, ev.field("src"), ev.pid, ev.field("msg"))
        for ev in sim.trace.message_deliveries()
    ]


class TestAdversaryDeterminism:
    def test_duplicating_same_seed_same_schedule(self):
        runs = []
        for _ in range(2):
            adv = DuplicatingAsynchronous(dup_probability=0.5, max_copies=3)
            sim = Simulation([Sender() for _ in range(4)], adv, seed=16)
            sim.run_to_quiescence()
            runs.append(_delivery_schedule(sim))
        assert runs[0] == runs[1]

    def test_chaos_same_seed_same_windows_and_schedule(self):
        runs, windows = [], []
        for _ in range(2):
            adv = ChaosAdversary(n=4, active_until=50.0)
            sim = Simulation([Sender() for _ in range(4)], adv, seed=17)
            sim.run_to_quiescence()
            runs.append(_delivery_schedule(sim))
            windows.append((adv.bursts, adv.partitions))
        assert runs[0] == runs[1]
        assert windows[0] == windows[1]

    def test_chaos_different_seed_different_windows(self):
        def windows(seed):
            adv = ChaosAdversary(n=4, active_until=50.0)
            Simulation([Sender() for _ in range(4)], adv, seed=seed)
            return (adv.bursts, adv.partitions)

        assert windows(1) != windows(2)
