"""Tests for adversaries, the network ledger, and fairness audits."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, PropertyViolation
from repro.sim import (
    LinkRule,
    LockStepSynchronous,
    PartiallySynchronous,
    PartitionAdversary,
    Process,
    ReliableAsynchronous,
    ScriptedAdversary,
    Simulation,
)


class Sender(Process):
    """Sends one tagged message to every other process at start."""

    def __init__(self):
        super().__init__()
        self.received = []

    def on_start(self):
        self.ctx.broadcast(("M", self.pid), include_self=False)

    def on_message(self, src, msg):
        self.received.append((self.ctx.now, src))


def deliveries(sim, dst):
    return [(ev.field("src"), ev.time) for ev in sim.trace.message_deliveries(dst)]


class TestReliableAsynchronous:
    def test_all_delivered_within_bounds(self):
        procs = [Sender() for _ in range(4)]
        sim = Simulation(procs, ReliableAsynchronous(0.2, 0.9), seed=1)
        sim.run_to_quiescence()
        assert sim.network.messages_delivered == 12
        for ev in sim.trace.message_deliveries():
            assert 0.2 <= ev.time <= 0.9

    def test_fairness_audit_passes(self):
        procs = [Sender() for _ in range(3)]
        sim = Simulation(procs, ReliableAsynchronous(), seed=2)
        sim.run_to_quiescence()
        sim.network.assert_fair_for(range(3))

    def test_invalid_delay_range(self):
        with pytest.raises(ConfigurationError):
            ReliableAsynchronous(1.0, 0.5)


class TestLockStep:
    def test_exact_delta(self):
        procs = [Sender() for _ in range(3)]
        sim = Simulation(procs, LockStepSynchronous(delta=2.5), seed=0)
        sim.run_to_quiescence()
        assert all(ev.time == 2.5 for ev in sim.trace.message_deliveries())


class TestPartiallySynchronous:
    def test_pre_gst_messages_arrive_after_gst(self):
        procs = [Sender() for _ in range(3)]
        sim = Simulation(procs, PartiallySynchronous(gst=10.0, delta=1.0), seed=3)
        sim.run_to_quiescence()
        for ev in sim.trace.message_deliveries():
            assert ev.time >= 10.0

    class LateSender(Sender):
        def on_start(self):
            self.ctx.set_timer(20.0, "go")

        def on_timer(self, tag):
            self.ctx.broadcast(("M", self.pid), include_self=False)

    def test_post_gst_messages_bounded_by_delta(self):
        procs = [self.LateSender() for _ in range(3)]
        sim = Simulation(procs, PartiallySynchronous(gst=10.0, delta=1.0), seed=4)
        sim.run_to_quiescence()
        for ev in sim.trace.message_deliveries():
            assert 20.0 <= ev.time <= 21.0


class TestScripted:
    def test_withhold_records_ledger(self):
        adv = ScriptedAdversary(base_delay=0.1).withhold([0], [1])
        procs = [Sender() for _ in range(3)]
        sim = Simulation(procs, adv, seed=5)
        sim.run_to_quiescence()
        held = sim.network.withheld_between([0], [1])
        assert len(held) == 1
        assert deliveries(sim, 1) == [(2, 0.1)]

    def test_fairness_audit_fails_on_withheld(self):
        adv = ScriptedAdversary().withhold([0], [1])
        procs = [Sender() for _ in range(3)]
        sim = Simulation(procs, adv, seed=5)
        sim.run_to_quiescence()
        with pytest.raises(PropertyViolation, match="network-fairness"):
            sim.network.assert_fair_for(range(3))

    def test_time_windowed_rule(self):
        class TwoPhase(Sender):
            def on_start(self):
                self.ctx.broadcast(("early", self.pid), include_self=False)
                self.ctx.set_timer(10.0, "late")

            def on_timer(self, tag):
                self.ctx.broadcast(("late", self.pid), include_self=False)

        adv = ScriptedAdversary(base_delay=0.1)
        adv.add_rule(LinkRule([0], [1], None, start=0.0, end=5.0))
        procs = [TwoPhase() for _ in range(2)]
        sim = Simulation(procs, adv, seed=6)
        sim.run_to_quiescence()
        got = [ev.field("msg")[0] for ev in sim.trace.message_deliveries(1)]
        assert got == ["late"]

    def test_first_matching_rule_wins(self):
        adv = ScriptedAdversary(base_delay=0.1)
        adv.add_rule(LinkRule([0], [1], 5.0))
        adv.add_rule(LinkRule([0], [1], None))
        procs = [Sender() for _ in range(2)]
        sim = Simulation(procs, adv, seed=7)
        sim.run_to_quiescence()
        assert deliveries(sim, 1) == [(0, 5.0)]


class TestPartition:
    def test_permanent_partition_blocks_cross_traffic(self):
        adv = PartitionAdversary([[0, 1], [2, 3]])
        procs = [Sender() for _ in range(4)]
        sim = Simulation(procs, adv, seed=8)
        sim.run_to_quiescence()
        for ev in sim.trace.message_deliveries():
            src, dst = ev.field("src"), ev.pid
            assert (src < 2) == (dst < 2)
        assert len(sim.network.withheld) == 8

    def test_healing_partition_delivers_late(self):
        adv = PartitionAdversary([[0, 1], [2, 3]], heal_at=50.0)
        procs = [Sender() for _ in range(4)]
        sim = Simulation(procs, adv, seed=9)
        sim.run_to_quiescence()
        cross = [
            ev for ev in sim.trace.message_deliveries()
            if (ev.field("src") < 2) != (ev.pid < 2)
        ]
        assert len(cross) == 8
        assert all(ev.time >= 50.0 for ev in cross)

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionAdversary([[0, 1], [1, 2]])

    def test_single_group_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionAdversary([[0, 1]])
