"""Tests for the asynchronous shared-memory layer and SMProgram model."""

from __future__ import annotations

import pytest

from repro.errors import AccessDeniedError, ConfigurationError
from repro.hardware.registers import SWMRRegister
from repro.sim import Op, Process, ReliableAsynchronous, SharedObject, Simulation, Sleep, SMProgram


class Register(SharedObject):
    def __init__(self, name, initial=None):
        super().__init__(name)
        self.value = initial

    def op_write(self, pid, v):
        self.value = v

    def op_read(self, pid):
        return self.value


class WriteThenRead(SMProgram):
    def __init__(self, reg, value):
        super().__init__()
        self.reg = reg
        self.value = value

    def program(self):
        yield Op(self.reg, "write", (self.value,))
        result = yield Op(self.reg, "read")
        return result


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        sim = Simulation([Process()], seed=0)
        sim.memory.register(Register("r"))
        with pytest.raises(ConfigurationError):
            sim.memory.register(Register("r"))

    def test_unknown_object_fails_fast(self):
        class Bad(SMProgram):
            def program(self):
                yield Op("nope", "read")

        p = Bad()
        sim = Simulation([p], seed=0)
        with pytest.raises(ConfigurationError):
            sim.run_to_quiescence()

    def test_unknown_operation(self):
        class BadOp(SMProgram):
            def program(self):
                yield Op("r", "fly")

        p = BadOp()
        sim = Simulation([p], seed=0)
        sim.memory.register(Register("r"))
        with pytest.raises(ConfigurationError, match="no operation"):
            sim.run_to_quiescence()

    def test_operations_listing(self):
        assert Register("r").operations() == ["read", "write"]


class TestSMProgram:
    def test_write_then_read(self):
        p = WriteThenRead("r", 42)
        sim = Simulation([p], seed=1)
        sim.memory.register(Register("r"))
        sim.run_to_quiescence()
        assert p.finished and p.output == 42

    def test_sleep(self):
        class Sleeper(SMProgram):
            def program(self):
                yield Sleep(5.0)
                t = self.ctx.now
                yield Op("r", "read")
                return t

        p = Sleeper()
        sim = Simulation([p], seed=2)
        sim.memory.register(Register("r"))
        sim.run_to_quiescence()
        assert p.output == 5.0

    def test_bad_yield_type(self):
        class BadYield(SMProgram):
            def program(self):
                yield "what"

        from repro.errors import SimulationError

        p = BadYield()
        sim = Simulation([p], seed=3)
        with pytest.raises(SimulationError, match="yielded"):
            sim.run_to_quiescence()

    def test_access_denied_raised_into_program(self):
        class Prober(SMProgram):
            def program(self):
                try:
                    yield Op("owned", "write", ("stolen",))
                except AccessDeniedError:
                    return "denied"
                return "allowed"

        prober = Prober()
        owner = Process()
        sim = Simulation([owner, prober], seed=4)
        sim.memory.register(SWMRRegister("owned", owner=0))
        sim.run_to_quiescence()
        assert prober.output == "denied"

    def test_two_writers_interleave_linearizably(self):
        a = WriteThenRead("r", "A")
        b = WriteThenRead("r", "B")
        sim = Simulation([a, b], ReliableAsynchronous(0.1, 2.0), seed=5)
        sim.memory.register(Register("r"))
        sim.run_to_quiescence()
        # each process reads after its own write; it sees its value or the
        # other's (if the other's write linearized in between) — never None
        assert a.output in ("A", "B")
        assert b.output in ("A", "B")


class TestCrashSemantics:
    def test_inflight_op_linearizes_but_response_suppressed(self):
        p = WriteThenRead("r", "X")
        sim = Simulation([p], ReliableAsynchronous(5.0, 6.0), seed=6)
        reg = Register("r")
        sim.memory.register(reg)
        sim.crash_at(0, 1.0)  # after invoke, before linearization
        sim.run_to_quiescence()
        assert reg.value == "X"  # the write landed (RDMA semantics)
        assert not p.finished  # but the program never resumed

    def test_crashed_process_invokes_nothing(self):
        p = WriteThenRead("r", "X")
        sim = Simulation([p], seed=7)
        reg = Register("r")
        sim.memory.register(reg)
        sim.crash(0)
        sim.run_to_quiescence()
        assert reg.value is None


class TestTraceRecords:
    def test_invoke_linearize_respond_sequence(self):
        p = WriteThenRead("r", 1)
        sim = Simulation([p], seed=8)
        sim.memory.register(Register("r"))
        sim.run_to_quiescence()
        kinds = [ev.kind for ev in sim.trace if ev.kind.startswith("op_")]
        assert kinds == [
            "op_invoke", "op_linearize", "op_respond",
            "op_invoke", "op_linearize", "op_respond",
        ]

    def test_ops_counted(self):
        p = WriteThenRead("r", 1)
        sim = Simulation([p], seed=9)
        sim.memory.register(Register("r"))
        sim.run_to_quiescence()
        assert sim.memory.ops_invoked == 2
        assert sim.memory.ops_linearized == 2
        assert sim.memory.pending_count == 0
