"""Tests for the idealized SRB oracle."""

from __future__ import annotations

import pytest

from repro.core.srb import check_srb
from repro.core.srb_oracle import SRBOracle
from repro.errors import ConfigurationError
from repro.sim import Process, Simulation


class Sink(Process):
    def __init__(self):
        super().__init__()
        self.got = []


def build(n, seed=0, policy=None):
    procs = [Sink() for _ in range(n)]
    oracle = SRBOracle(policy=policy, seed=seed)
    sim = Simulation(procs, seed=seed)
    oracle.bind(sim)
    for p in range(n):
        oracle.subscribe(p, lambda s, k, v, p=p: procs[p].got.append((s, k, v)))
    return sim, procs, oracle


class TestProperties:
    def test_all_four_srb_properties_on_trace(self):
        sim, procs, oracle = build(3, seed=1)
        h = oracle.sender_handle(0)
        sim.at(0.1, lambda: [h.broadcast("a"), h.broadcast("b"), h.broadcast("c")])
        sim.run_to_quiescence()
        check_srb(sim.trace, 0, range(3)).assert_ok()

    def test_in_order_per_receiver_even_with_adverse_delays(self):
        # seq 1 gets a huge delay; seq 2 a tiny one — delivery stays ordered
        delays = {1: 10.0, 2: 0.1}
        sim, procs, oracle = build(2, seed=2,
                                   policy=lambda s, r, k, now: delays[k])
        h = oracle.sender_handle(0)
        sim.at(0.0, lambda: [h.broadcast("first"), h.broadcast("second")])
        sim.run_to_quiescence()
        assert procs[1].got == [(0, 1, "first"), (0, 2, "second")]

    def test_independent_streams(self):
        sim, procs, oracle = build(3, seed=3)
        h0, h1 = oracle.sender_handle(0), oracle.sender_handle(1)
        sim.at(0.1, lambda: [h0.broadcast("x"), h1.broadcast("y")])
        sim.run_to_quiescence()
        seqs = {(s, k) for (s, k, _v) in procs[2].got}
        assert seqs == {(0, 1), (1, 1)}

    def test_withheld_ledger(self):
        sim, procs, oracle = build(2, seed=4,
                                   policy=lambda s, r, k, now: None if r == 1 else 0.1)
        h = oracle.sender_handle(0)
        sim.at(0.1, lambda: h.broadcast("partial"))
        sim.run_to_quiescence()
        assert procs[1].got == []
        assert len(oracle.withheld) == 1
        assert oracle.withheld[0].receiver == 1

    def test_crashed_receiver_skipped(self):
        sim, procs, oracle = build(2, seed=5)
        h = oracle.sender_handle(0)
        sim.crash(1)
        sim.at(0.1, lambda: h.broadcast("m"))
        sim.run_to_quiescence()
        assert procs[1].got == []


class TestWiring:
    def test_handle_issued_once(self):
        _, _, oracle = build(2, seed=6)
        oracle.sender_handle(0)
        with pytest.raises(ConfigurationError):
            oracle.sender_handle(0)

    def test_subscribe_once(self):
        _, _, oracle = build(2, seed=7)
        with pytest.raises(ConfigurationError):
            oracle.subscribe(0, lambda s, k, v: None)

    def test_unbound_oracle_rejects_broadcast(self):
        oracle = SRBOracle(seed=8)
        h = oracle.sender_handle(0)
        with pytest.raises(ConfigurationError, match="bind"):
            h.broadcast("m")

    def test_double_bind_rejected(self):
        sim1 = Simulation([Sink()], seed=9)
        sim2 = Simulation([Sink()], seed=10)
        oracle = SRBOracle(sim1)
        with pytest.raises(ConfigurationError):
            oracle.bind(sim2)
        oracle.bind(sim1)  # re-binding to the same sim is fine
