"""Property-based tests: protocol safety under randomized schedules/faults.

Each property runs a full simulation inside hypothesis with the schedule
shaped by drawn parameters (delay ranges, crash times, victim sets, seeds)
and asserts the protocol's *safety* properties — the ones that must hold
on every schedule, not just eventually-nice ones.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.agreement import VERY_WEAK, VeryWeakAgreement, check_agreement
from repro.broadcast import BrachaRBC, check_reliable_broadcast
from repro.core.directionality import check_directionality
from repro.core.rounds import RoundProcess, SharedMemoryRoundTransport
from repro.core.srb import check_srb
from repro.core.srb_from_trinc import SRBFromTrInc
from repro.core.uni_from_sm import build_objects_for
from repro.hardware import TrincAuthority
from repro.sim import ReliableAsynchronous, Simulation

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class _Chat(RoundProcess):
    def on_round_start(self):
        self.rounds.begin_round(("m", self.pid), label="r1")


class TestUnidirectionalityProperty:
    @SLOW
    @given(
        seed=st.integers(0, 10_000),
        max_delay=st.floats(0.1, 6.0),
        crash_time=st.one_of(st.none(), st.floats(0.0, 5.0)),
    )
    def test_sm_rounds_never_violate_unidirectionality(
        self, seed, max_delay, crash_time
    ):
        n = 4
        procs = [_Chat(SharedMemoryRoundTransport()) for _ in range(n)]
        sim = Simulation(procs, ReliableAsynchronous(0.0, max_delay), seed=seed)
        for obj in build_objects_for("append-log", n):
            sim.memory.register(obj)
        crashed = None
        if crash_time is not None:
            crashed = seed % n
            sim.crash_at(crashed, crash_time)
        sim.run(until=400.0)
        correct = [p for p in range(n) if p != crashed]
        check_directionality(sim.trace, correct).assert_unidirectional()


class TestSRBSafetyProperty:
    @SLOW
    @given(
        seed=st.integers(0, 10_000),
        max_delay=st.floats(0.1, 4.0),
        crash_victims=st.sets(st.integers(1, 3), max_size=1),
    )
    def test_trusted_log_srb_safety_any_schedule(self, seed, max_delay,
                                                 crash_victims):
        """Agreement/sequencing/integrity hold even on truncated runs."""
        n = 4
        auth = TrincAuthority(n, seed=seed)
        procs = [
            SRBFromTrInc(0, n, auth, trinket=auth.trinket(p) if p == 0 else None)
            for p in range(n)
        ]
        sim = Simulation(procs, ReliableAsynchronous(0.0, max_delay), seed=seed)
        sim.at(0.1, lambda: procs[0].broadcast("a"))
        sim.at(0.2, lambda: procs[0].broadcast("b"))
        for v in crash_victims:
            sim.crash_at(v, 0.5)
        # truncated horizon on purpose: safety must hold mid-flight too
        sim.run(until=1.5)
        correct = [p for p in range(n) if p not in crash_victims]
        rep = check_srb(sim.trace, 0, correct, expect_complete=False)
        assert not rep.agreement_violations
        assert not rep.sequencing_violations
        assert not rep.integrity_violations


class TestBrachaSafetyProperty:
    @SLOW
    @given(seed=st.integers(0, 10_000), horizon=st.floats(0.2, 5.0))
    def test_no_two_correct_commit_differently(self, seed, horizon):
        n, f = 4, 1
        procs = [BrachaRBC(0, n, f) for _ in range(n)]
        sim = Simulation(procs, ReliableAsynchronous(0.0, 1.0), seed=seed)
        sim.at(0.05, lambda: procs[0].broadcast("v"))
        sim.run(until=horizon)
        rep = check_reliable_broadcast(
            sim.trace, 0, "v", range(n), sender_correct=True
        )
        assert not rep.agreement_violations
        assert not rep.validity_violations or len(rep.commits) < n


class TestVWAAgreementProperty:
    @SLOW
    @given(
        seed=st.integers(0, 10_000),
        inputs=st.lists(st.sampled_from(["a", "b"]), min_size=3, max_size=5),
    )
    def test_agreement_up_to_bot_any_inputs(self, seed, inputs):
        n = len(inputs)
        procs = [
            VeryWeakAgreement(SharedMemoryRoundTransport(), inputs[p])
            for p in range(n)
        ]
        sim = Simulation(procs, ReliableAsynchronous(0.0, 2.0), seed=seed)
        for obj in build_objects_for("append-log", n):
            sim.memory.register(obj)
        sim.run(until=400.0)
        rep = check_agreement(
            sim.trace, VERY_WEAK, dict(enumerate(inputs)), range(n),
            all_correct=True,
        )
        rep.assert_ok()


class TestDeterminismProperty:
    @SLOW
    @given(seed=st.integers(0, 10_000))
    def test_same_seed_identical_trace_views(self, seed):
        def run():
            n = 3
            procs = [_Chat(SharedMemoryRoundTransport()) for _ in range(n)]
            sim = Simulation(procs, ReliableAsynchronous(0.0, 1.0), seed=seed)
            for obj in build_objects_for("append-log", n):
                sim.memory.register(obj)
            sim.run(until=100.0)
            return tuple(sim.trace.local_view(p) for p in range(n))

        assert run() == run()
