"""The crypto cache layer: cached behavior must equal the uncached reference.

The caches are identity-keyed (plus content-keyed memos higher up), so the
property at stake is *extensional equality*: for every value, the cached
``canonical_bytes``/``content_hash``/``verify`` return exactly what the
uncached reference returns — including the adversarial look-alikes
(``True`` vs ``1``, ``0`` vs ``0.0``) whose Python ``==`` would poison a
value-keyed cache.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.serialize import (
    BoundedCache,
    caching_disabled,
    caching_enabled,
    canonical_bytes,
    content_hash,
    crypto_stats,
    reset_crypto_caches,
)
from repro.crypto.signatures import TAG_LENGTH, Signature, SignatureScheme

values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=8)
    | st.text(min_size=64, max_size=80)  # above the scalar-cache threshold
    | st.binary(max_size=8),
    lambda children: st.tuples(children, children)
    | st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=4), children, max_size=3),
    max_leaves=10,
)

# the cases a value-keyed (rather than identity-keyed) cache would conflate
LOOKALIKES = [True, 1, 1.0, False, 0, 0.0, -0.0, (True,), (1,), (1.0,)]


class TestCachedEqualsUncached:
    @given(values)
    @settings(max_examples=200)
    def test_canonical_bytes_extensional(self, v):
        with caching_disabled():
            reference = canonical_bytes(v)
        assert canonical_bytes(v) == reference
        # and again, now that the value may sit in the cache
        assert canonical_bytes(v) == reference

    @given(values)
    @settings(max_examples=100)
    def test_content_hash_extensional(self, v):
        with caching_disabled():
            reference = content_hash(v)
        assert content_hash(v) == reference
        assert content_hash(v) == hashlib.sha256(canonical_bytes(v)).digest()

    def test_lookalikes_stay_distinct_through_cache(self):
        # warm the cache with every value, then re-encode: each must keep
        # its own encoding even though many compare Python-equal
        encodings = [canonical_bytes(v) for v in LOOKALIKES]
        assert [canonical_bytes(v) for v in LOOKALIKES] == encodings
        # note list.index uses ==, which is exactly the conflation at stake
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes(1) != canonical_bytes(1.0)
        assert canonical_bytes((True,)) != canonical_bytes((1,))

    def test_mutated_list_reencodes(self):
        # mutable containers must never be served from the cache
        inner = [1, 2]
        v = (inner, "x")
        first = canonical_bytes(v)
        inner.append(3)
        assert canonical_bytes(v) != first
        with caching_disabled():
            assert canonical_bytes(v) == canonical_bytes(([1, 2, 3], "x"))

    def test_mutated_bytearray_reencodes(self):
        buf = bytearray(b"a" * 100)
        v = (bytes(b"ctx"), buf)
        first = canonical_bytes(v)
        buf[0] = ord("b")
        assert canonical_bytes(v) != first


class TestStatsAndControls:
    def test_serialize_hit_counted(self):
        reset_crypto_caches()
        v = ("hit", 1, 2)
        canonical_bytes(v)
        before = crypto_stats().serialize_hits
        canonical_bytes(v)
        assert crypto_stats().serialize_hits == before + 1

    def test_caching_disabled_restores_flag(self):
        assert caching_enabled()
        with caching_disabled():
            assert not caching_enabled()
        assert caching_enabled()

    def test_reset_zeroes_stats(self):
        canonical_bytes(("something", 42))
        reset_crypto_caches()
        s = crypto_stats()
        assert s.serialize_misses == 0 and s.hmac_ops == 0

    def test_bounded_cache_evicts_oldest(self):
        c = BoundedCache(maxsize=2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)
        assert len(c) == 2
        assert c.get("a") is None
        assert c.get("c") == 3


class TestVerifyCache:
    def test_verify_cached_equals_uncached(self, scheme4):
        signer = scheme4.signer(1)
        msg = ("vote", 7, "value")
        sig = signer.sign(msg)
        with caching_disabled():
            reference = (
                scheme4.verify(msg, sig),
                scheme4.verify(("vote", 7, "other"), sig),
                scheme4.verify(msg, Signature(signer=2, tag=sig.tag)),
            )
        assert reference == (True, False, False)
        for _ in range(2):  # second pass is served from the cache
            assert scheme4.verify(msg, sig) is True
            assert scheme4.verify(("vote", 7, "other"), sig) is False
            assert scheme4.verify(msg, Signature(signer=2, tag=sig.tag)) is False

    def test_verify_hit_skips_hmac(self, scheme4):
        reset_crypto_caches()
        signer = scheme4.signer(0)
        msg = ("m", 1)
        sig = signer.sign(msg)
        assert scheme4.verify(msg, sig)
        ops = crypto_stats().hmac_ops
        assert scheme4.verify(msg, sig)
        assert crypto_stats().hmac_ops == ops  # hit: no new HMAC
        assert crypto_stats().verify_hits >= 1

    @given(st.binary(max_size=64).filter(lambda b: len(b) != TAG_LENGTH))
    @settings(max_examples=50)
    def test_malformed_tag_lengths_rejected(self, tag):
        scheme = SignatureScheme(3, seed=5)
        reset_crypto_caches()
        sig = Signature(signer=0, tag=tag)
        assert scheme.verify(("m",), sig) is False
        assert crypto_stats().cheap_rejects >= 1
        assert crypto_stats().hmac_ops == 0  # rejected before any HMAC

    @pytest.mark.parametrize(
        "tag", ["not-bytes", 123, None, ("t",), b"", b"short",
                b"x" * (TAG_LENGTH + 1)]
    )
    def test_malformed_tags_return_false_never_raise(self, scheme4, tag):
        assert scheme4.verify("msg", Signature(signer=0, tag=tag)) is False

    def test_bytearray_tag_of_right_length_still_verifies(self, scheme4):
        signer = scheme4.signer(3)
        sig = signer.sign("payload")
        assert scheme4.verify(
            "payload", Signature(signer=3, tag=bytearray(sig.tag))
        )
