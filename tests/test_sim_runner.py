"""Tests for the Simulation façade: lifecycle, faults, timers, determinism."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim import Process, ReliableAsynchronous, Simulation


class Echo(Process):
    def on_start(self):
        self.ctx.broadcast(("HELLO", self.pid), include_self=False)

    def on_message(self, src, msg):
        if msg[0] == "HELLO":
            self.ctx.send(src, ("ACK", self.pid))
        elif msg[0] == "ACK":
            self.ctx.record("custom", event="acked", by=src)


class TimerProc(Process):
    def __init__(self):
        super().__init__()
        self.fired = []

    def on_start(self):
        self.t1 = self.ctx.set_timer(1.0, "one")
        self.t2 = self.ctx.set_timer(2.0, "two")
        self.ctx.cancel_timer(self.t2)

    def on_timer(self, tag):
        self.fired.append(tag)


class TestLifecycle:
    def test_ping_pong_counts(self):
        n = 3
        sim = Simulation([Echo() for _ in range(n)], seed=1)
        sim.run_to_quiescence()
        acks = sim.trace.events("custom")
        assert len(acks) == n * (n - 1)

    def test_empty_process_list_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulation([])

    def test_process_reuse_rejected(self):
        p = Echo()
        Simulation([p], seed=0)
        with pytest.raises(SimulationError):
            Simulation([p], seed=0)

    def test_run_after_quiescence_is_fine(self):
        sim = Simulation([Echo(), Echo()], seed=2)
        sim.run_to_quiescence()
        stats = sim.run_to_quiescence()
        assert stats.events_processed == 0

    def test_event_cap_raises(self):
        class Livelock(Process):
            def on_start(self):
                self.ctx.set_timer(0.1, "t")

            def on_timer(self, tag):
                self.ctx.set_timer(0.1, "t")

        sim = Simulation([Livelock()], seed=0)
        old = Simulation.DEFAULT_MAX_EVENTS
        Simulation.DEFAULT_MAX_EVENTS = 100
        try:
            with pytest.raises(SimulationError, match="event cap"):
                sim.run()
        finally:
            Simulation.DEFAULT_MAX_EVENTS = old


class TestDeterminism:
    def _trace(self, seed):
        sim = Simulation([Echo() for _ in range(4)],
                         ReliableAsynchronous(0.01, 1.0), seed=seed)
        sim.run_to_quiescence()
        return sim.trace

    def test_same_seed_same_views(self):
        t1, t2 = self._trace(7), self._trace(7)
        for pid in range(4):
            assert t1.local_view(pid) == t2.local_view(pid)

    def test_different_seed_differs(self):
        t1, t2 = self._trace(7), self._trace(8)
        assert any(
            t1.local_view(p) != t2.local_view(p) for p in range(4)
        )


class TestCrash:
    def test_crashed_process_stops_sending_and_receiving(self):
        sim = Simulation([Echo() for _ in range(3)],
                         ReliableAsynchronous(1.0, 2.0), seed=3)
        sim.crash_at(0, 0.5)  # before any delivery arrives
        sim.run_to_quiescence()
        # 0's HELLOs were already submitted at time 0 (sends precede crash),
        # but 0 must never record receiving an ACK
        acks_at_0 = sim.trace.events(
            "custom", pid=0, predicate=lambda e: e.field("event") == "acked"
        )
        assert acks_at_0 == []

    def test_crash_is_idempotent(self):
        sim = Simulation([Echo(), Echo()], seed=4)
        sim.crash(0)
        sim.crash(0)
        assert sim.crashed_pids == frozenset({0})

    def test_correct_pids_excludes_crashed_and_byzantine(self):
        sim = Simulation([Echo() for _ in range(4)], seed=5)
        sim.declare_byzantine(1)
        sim.crash(2)
        assert sim.correct_pids == (0, 3)

    def test_crash_out_of_range(self):
        sim = Simulation([Echo()], seed=6)
        with pytest.raises(ConfigurationError):
            sim.crash(5)


class TestTimers:
    def test_cancelled_timer_never_fires(self):
        p = TimerProc()
        sim = Simulation([p], seed=0)
        sim.run_to_quiescence()
        assert p.fired == ["one"]

    def test_timer_not_delivered_to_crashed(self):
        p = TimerProc()
        sim = Simulation([p], seed=0)
        sim.crash_at(0, 0.5)
        sim.run_to_quiescence()
        assert p.fired == []


class TestScripting:
    def test_at_callback_runs_at_time(self):
        sim = Simulation([Echo()], seed=0)
        seen = []
        sim.at(5.0, lambda: seen.append(sim.now))
        sim.run_to_quiescence()
        assert seen == [5.0]
