"""Property-based fuzzing of proof validators and message handlers.

The validators (L2 proofs, signature chains, checkpoint certificates, UIs)
are the security boundary: Byzantine processes feed them arbitrary bytes.
Two families of properties:

- **mutation soundness** — take a *valid* artifact, mutate any field, and
  the validator must reject (or the mutation was a no-op);
- **crash-freedom** — protocol handlers fed arbitrary junk must neither
  raise nor change observable protocol outputs.
"""

from __future__ import annotations

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.broadcast.dolev_strong import ds_domain, validate_chain
from repro.core.srb_from_uni import (
    copy_domain,
    l1_domain,
    val_domain,
    validate_l2,
)
from repro.crypto import SignatureScheme
from repro.crypto.signatures import Signature

FAST = settings(max_examples=60, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def make_valid_l2(scheme, signers, sender=0, k=1, m="value", t=1):
    sig_s = signers[sender].sign(val_domain(sender, k, m))
    copies = tuple((j, signers[j].sign(copy_domain(sender, k, m))) for j in (1, 2))
    l1items = tuple(
        (b, copies, signers[b].sign(l1_domain(sender, k, m))) for b in (1, 2)
    )
    return ("L2", k, m, sig_s, l1items)


junk = st.one_of(
    st.none(),
    st.integers(-5, 5),
    st.text(max_size=6),
    st.binary(max_size=6),
    st.tuples(st.integers(), st.text(max_size=3)),
)


class TestL2ProofMutation:
    @given(field=st.integers(0, 4), replacement=junk)
    @FAST
    def test_top_level_field_mutation_rejected(self, field, replacement):
        scheme = SignatureScheme(4, seed=31)
        signers = [scheme.signer(p) for p in range(4)]
        proof = make_valid_l2(scheme, signers)
        assert validate_l2(scheme, 0, proof, 1) == (1, "value")
        mutated = list(proof)
        mutated[field] = replacement
        mutated = tuple(mutated)
        result = validate_l2(scheme, 0, mutated, 1)
        if mutated == proof:
            assert result == (1, "value")
        else:
            assert result is None

    @given(builder_idx=st.integers(0, 1), part=st.integers(0, 2),
           replacement=junk)
    @FAST
    def test_l1_item_mutation_rejected(self, builder_idx, part, replacement):
        scheme = SignatureScheme(4, seed=32)
        signers = [scheme.signer(p) for p in range(4)]
        proof = make_valid_l2(scheme, signers)
        l1items = list(proof[4])
        item = list(l1items[builder_idx])
        item[part] = replacement
        l1items[builder_idx] = tuple(item)
        mutated = (*proof[:4], tuple(l1items))
        if mutated == proof:
            return
        # with one corrupted builder only ONE valid builder remains (< t+1)
        assert validate_l2(scheme, 0, mutated, 1) is None

    @given(sig_bytes=st.binary(min_size=32, max_size=32))
    @FAST
    def test_random_sender_signature_rejected(self, sig_bytes):
        scheme = SignatureScheme(4, seed=33)
        signers = [scheme.signer(p) for p in range(4)]
        proof = make_valid_l2(scheme, signers)
        forged = (*proof[:3], Signature(signer=0, tag=sig_bytes), proof[4])
        if forged == proof:
            return
        assert validate_l2(scheme, 0, forged, 1) is None


class TestChainMutation:
    @given(link=st.integers(0, 1), replacement=junk)
    @FAST
    def test_link_mutation_rejected(self, link, replacement):
        scheme = SignatureScheme(3, seed=34)
        signers = [scheme.signer(p) for p in range(3)]
        s0 = signers[0].sign(ds_domain(0, "v", ()))
        s1 = signers[1].sign(ds_domain(0, "v", (0,)))
        chain = ("v", ((0, s0), (1, s1)))
        assert validate_chain(scheme, 0, chain) == ("v", (0, 1))
        links = list(chain[1])
        pair = list(links[link])
        pair[1] = replacement
        links[link] = tuple(pair)
        mutated = ("v", tuple(links))
        if mutated == chain:
            return
        assert validate_chain(scheme, 0, mutated) is None

    @given(value=junk)
    @FAST
    def test_value_swap_rejected(self, value):
        scheme = SignatureScheme(3, seed=35)
        signers = [scheme.signer(p) for p in range(3)]
        s0 = signers[0].sign(ds_domain(0, "real", ()))
        mutated = (value, ((0, s0),))
        if value == "real":
            return
        assert validate_chain(scheme, 0, mutated) is None


protocol_junk = st.one_of(
    junk,
    st.tuples(st.sampled_from(
        ["USIG", "REQUEST", "PREPARE", "COMMIT", "CHECKPOINT",
         "VIEW-CHANGE", "NEW-VIEW", "REQ-VIEW-CHANGE", "SRB-TL",
         "__round__", "SEND", "ECHO", "READY"]
    ), junk, junk),
    st.tuples(st.text(max_size=4), junk, junk, junk, junk),
)


class TestHandlerCrashFreedom:
    @given(msgs=st.lists(protocol_junk, max_size=12))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_minbft_replica_survives_junk(self, msgs):
        from repro.consensus import build_minbft_system, check_replication

        sim, reps, clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=2, seed=40,
        )
        # spray junk at every replica from the client's (outsider) pid
        sim.at(0.05, lambda: [
            sim.processes[len(reps)].ctx.send(r, m)
            for m in msgs for r in range(len(reps))
        ])
        sim.run(until=2000.0)
        n = len(reps)
        rep = check_replication(sim.trace, range(n), expected_ops={n: 2})
        rep.assert_ok()

    @given(msgs=st.lists(protocol_junk, max_size=12))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bracha_survives_junk(self, msgs):
        from repro.broadcast import BrachaRBC, check_reliable_broadcast
        from repro.sim import Process, ReliableAsynchronous, Simulation

        class Junker(Process):
            def on_start(self):
                for m in msgs:
                    self.ctx.broadcast(m, include_self=False)

        procs = [BrachaRBC(0, 4, 1) for _ in range(4)] + [Junker()]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.3), seed=41)
        sim.declare_byzantine(4)
        sim.at(0.1, lambda: procs[0].broadcast("v"))
        sim.run(until=200.0)
        rep = check_reliable_broadcast(sim.trace, 0, "v", range(4), True)
        rep.assert_ok()
