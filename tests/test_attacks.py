"""The active Byzantine attack campaign and its accountability converse.

Three claims, mirroring the paper's classification:

1. With *intact* trusted hardware, every protocol-aware attack in the
   library is absorbed at its minimal replication factor (n = 2f+1 for
   MinBFT/SRB, 3f+1 for PBFT) — safe, live, and conviction-free.
2. With *compromised* hardware (cloned trinket / extracted USIG key),
   MinBFT safety at n = 2f+1 demonstrably falls.
3. The fall is not silent: the accountability layer convicts exactly the
   culprit with a self-contained, independently replayable proof, and the
   surviving group recovers to a live, safe configuration in the same run.
"""

from __future__ import annotations

import pytest

from repro.consensus.forensics import ProofOfMisbehavior, verify_proof
from repro.consensus.harness import build_minbft_system, build_pbft_system
from repro.consensus.usig import USIG, USIGVerifier
from repro.core.srb_from_uni import build_sm_srb_system
from repro.crypto import reset_crypto_caches
from repro.errors import ConfigurationError
from repro.faults.attacks import ATTACKS, attacks_for, get_attack
from repro.faults.chaos import (
    attack_sweep,
    run_attack,
    run_compromised_minbft_soak,
)
from repro.hardware.compromise import (
    ClonedTrinket,
    KeyExtractedUSIG,
    compromise_trinket,
    extract_usig_key,
)
from repro.hardware.trinc import TrincAuthority


class TestAttackRegistry:
    def test_registry_covers_all_three_protocols(self):
        protocols = {spec.protocol for spec in ATTACKS.values()}
        assert protocols == {"minbft", "pbft", "srb"}

    def test_attacks_for_partitions_registry(self):
        total = sum(
            len(attacks_for(p)) for p in ("minbft", "pbft", "srb")
        )
        assert total == len(ATTACKS)

    def test_unknown_attack_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown attack"):
            get_attack("no-such-attack")

    def test_attack_on_wrong_protocol_runner_rejected(self):
        from repro.faults.chaos import make_schedule, run_minbft_chaos

        with pytest.raises(ConfigurationError, match="targets"):
            run_minbft_chaos(
                make_schedule(0, crashable=()), attack="pbft-equivocate"
            )


class TestAttackMatrix:
    """Intact hardware: every cell green, and non-vacuously so."""

    @pytest.mark.parametrize("name", sorted(ATTACKS))
    def test_cell_green_and_struck(self, name):
        r = run_attack(name, seed=0)
        byz = r.stats["byzantine"]
        assert r.ok, f"{name}: {r.violations[:2]}"
        assert byz["attack"] == name
        assert byz["strikes"] > 0, (
            f"{name} never fired — the cell is vacuous, retune its spec"
        )

    def test_matrix_convicts_nobody_under_intact_hardware(self):
        # intact hardware cannot bind one counter to two messages, so the
        # audit-only accountability checker must find zero evidence
        for name in sorted(n for n, s in ATTACKS.items()
                           if s.protocol == "minbft"):
            r = run_attack(name, seed=0)
            forensics = r.stats["byzantine"]["forensics"]
            assert forensics["convicted"] == [], (
                f"{name}: false conviction {forensics['convicted']}"
            )
            assert forensics["uis_checked"] > 0  # the audit actually ran

    def test_sweep_axis_shape(self):
        results = attack_sweep(
            attacks=["equivocate-prepare", "srb-equivocate"], seeds=range(2)
        )
        assert len(results) == 4
        assert all(r.ok for r in results)
        protocols = {r.protocol for r in results}
        assert protocols == {
            "minbft+equivocate-prepare", "srb-uni+srb-equivocate"
        }


class TestCompromisedTrinket:
    def test_clone_equivocates_past_the_authority_check(self):
        authority = TrincAuthority(3, seed=0)
        genuine = authority.trinket(0)
        att_a = genuine.attest(1, "history-a")
        clone = compromise_trinket(genuine)
        clone.rollback(0)
        att_b = clone.attest(1, "history-b")
        # both attestations bind counter 1 and both verify: the fork the
        # fuse-backed counter exists to prevent
        assert authority.check(att_a, 0)
        assert authority.check(att_b, 0)
        assert att_a.seq == att_b.seq == 1
        assert att_a.message != att_b.message

    def test_fork_diverges_independently(self):
        authority = TrincAuthority(3, seed=0)
        clone = ClonedTrinket(authority, 0)
        twin = clone.fork()
        a = clone.attest(1, "left")
        b = twin.attest(1, "right")
        assert authority.check(a, 0) and authority.check(b, 0)
        assert clone.forks == 1

    def test_rollback_rejects_bad_target(self):
        clone = ClonedTrinket(TrincAuthority(3, seed=0), 0)
        with pytest.raises(ConfigurationError):
            clone.rollback(-1)


class TestKeyExtractedUSIG:
    def test_forged_uis_verify_and_constitute_proof(self):
        authority = TrincAuthority(3, seed=0)
        verifier = USIGVerifier(authority)
        usig = USIG(authority.trinket(0))
        honest_ui = usig.create_ui("hello")
        leaked = extract_usig_key(usig)
        forged = leaked.create_ui_at("goodbye", honest_ui.counter)
        assert verifier.verify_ui(honest_ui, "hello", 0)
        assert verifier.verify_ui(forged, "goodbye", 0)
        proof = ProofOfMisbehavior(
            culprit=0, counter=honest_ui.counter,
            first=("hello", honest_ui), second=("goodbye", forged),
        )
        assert verify_proof(proof, verifier)

    def test_extraction_continues_from_live_counter(self):
        authority = TrincAuthority(3, seed=0)
        usig = USIG(authority.trinket(1))
        usig.create_ui("a")
        usig.create_ui("b")
        leaked = KeyExtractedUSIG.from_usig(usig)
        ui = leaked.create_ui("c")
        assert ui.counter == 3
        assert leaked.forged == 0 and leaked.created == 1

    def test_forging_at_counter_zero_rejected(self):
        leaked = KeyExtractedUSIG(TrincAuthority(3, seed=0), 0)
        with pytest.raises(ConfigurationError):
            leaked.create_ui_at("x", 0)


class TestProofOfMisbehavior:
    def _proof(self):
        authority = TrincAuthority(3, seed=0)
        verifier = USIGVerifier(authority)
        leaked = KeyExtractedUSIG(authority, 0)
        a = leaked.create_ui_at("msg-a", 5)
        b = leaked.create_ui_at("msg-b", 5)
        return verifier, ProofOfMisbehavior(
            culprit=0, counter=5, first=("msg-a", a), second=("msg-b", b)
        )

    def test_valid_proof_verifies(self):
        verifier, proof = self._proof()
        assert verify_proof(proof, verifier)

    def test_same_message_twice_is_not_evidence(self):
        verifier, proof = self._proof()
        same = ProofOfMisbehavior(
            culprit=0, counter=5, first=proof.first, second=proof.first
        )
        assert not verify_proof(same, verifier)

    def test_wrong_culprit_rejected(self):
        verifier, proof = self._proof()
        reframed = ProofOfMisbehavior(
            culprit=1, counter=5, first=proof.first, second=proof.second
        )
        assert not verify_proof(reframed, verifier)

    def test_tampered_message_rejected(self):
        verifier, proof = self._proof()
        tampered = ProofOfMisbehavior(
            culprit=0, counter=5,
            first=("msg-TAMPERED", proof.first[1]), second=proof.second,
        )
        assert not verify_proof(tampered, verifier)

    def test_garbage_never_raises(self):
        verifier, _ = self._proof()
        for junk in (None, 42, "proof", ("a", "b"),
                     ProofOfMisbehavior(0, 5, ("m", None), ("n", None))):
            assert not verify_proof(junk, verifier)


class TestCompromisedSoak:
    """The acceptance arc: violate -> detect -> convict -> recover."""

    @pytest.fixture(scope="class")
    def soak(self):
        return run_compromised_minbft_soak(seed=0)

    def test_safety_demonstrably_violated(self, soak):
        assert soak["hw_equivocations"] >= 1
        assert soak["online_violations"], (
            "the cloned trinket never split the group — the planted "
            "violation is vacuous"
        )

    def test_exactly_the_culprit_convicted(self, soak):
        assert soak["convicted"] == [0]
        assert 0 in soak["detected_at"]

    def test_proof_is_independently_replayable(self, soak):
        proof = soak["proof"]
        assert isinstance(proof, ProofOfMisbehavior)
        assert proof.culprit == 0
        # replay against a fresh checker built only from the public
        # verifier: the proof is self-contained evidence
        assert verify_proof(proof, soak["verifier"])

    def test_group_recovers_to_live_safe_state(self, soak):
        # post-conviction the survivors re-formed and the final audit over
        # the correct replicas is clean, clients included
        assert soak["report"].ok, soak["report"].violations[:3]

    def test_forensics_stats_shape(self, soak):
        stats = soak["forensics"]
        assert stats["convicted"] == [0]
        assert stats["uis_checked"] > 0
        assert stats["distinct_bindings"] > 0
        # detection happened mid-run, not as a post-mortem
        assert 0.0 < soak["detected_at"][0] < 600.0


class TestHardenedHandlers:
    """Byzantine babble: malformed frames are counted, never fatal."""

    GARBAGE = [
        None,
        42,
        "BABBLE",
        (),
        ("PREPARE",),
        ("USIG", "half"),
        ("USIG", ("PREPARE", "v", None, ()), "not-a-ui"),
        ("COMMIT", 0, 1, ("REQUEST",), None),
        ("REQUEST", "x", -1, None, b"sig"),
        (b"\x00" * 8, 1, 2),
    ]

    def test_minbft_survives_babble(self):
        reset_crypto_caches()
        sim, replicas, _clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=1, seed=0
        )
        sim.run(until=50.0)
        target = replicas[1]
        before = target.commits_executed
        for junk in self.GARBAGE:
            target.on_message(0, junk)  # must not raise
        stats = target.consensus_stats()
        assert stats["malformed_rejects"] >= len(self.GARBAGE) - 2
        assert target.commits_executed == before

    def test_pbft_survives_babble(self):
        reset_crypto_caches()
        sim, replicas, _clients = build_pbft_system(
            f=1, n_clients=1, ops_per_client=1, seed=0
        )
        sim.run(until=50.0)
        target = replicas[1]
        for junk in self.GARBAGE:
            target.on_message(0, junk)
        stats = target.consensus_stats()
        assert stats["malformed_rejects"] > 0
        assert stats["convicted_rejects"] == 0

    def test_srb_survives_babble(self):
        sim, procs, _scheme = build_sm_srb_system(n=3, t=1, sender=0, seed=0)
        sim.at(0.5, lambda: procs[0].broadcast("real"))
        sim.run(until=100.0)
        receiver = procs[1]
        for junk in self.GARBAGE:
            receiver.on_round_message("r", 0, junk)
        assert receiver.malformed_rejects > 0
        # forged artifacts with bad proofs land in the other bucket
        receiver.on_round_message(
            "r", 0, ("VAL", 9, "forged", None)
        )
        assert receiver.malformed_rejects + receiver.proof_rejects >= len(
            self.GARBAGE
        )

    def test_convicted_rejects_counted(self):
        reset_crypto_caches()
        sim, replicas, _clients = build_minbft_system(
            f=1, n_clients=1, ops_per_client=1, seed=0
        )
        sim.run(until=50.0)
        target = replicas[1]
        target.convict(0)
        # even a *genuinely signed* message from the culprit is refused:
        # its hardware is no longer trusted, so a valid UI proves nothing
        message = ("PREPARE", target.view, 99, ())
        ui = replicas[0].usig.create_ui(message)
        target.on_message(0, ("USIG", message, ui))
        assert target.consensus_stats()["convicted_rejects"] > 0
