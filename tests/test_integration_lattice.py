"""Integration tests composing the lattice's constructions end to end.

These are the "arrows compose" tests: each one stacks two or more
reductions from the paper and checks the top-level guarantee, which
exercises every layer underneath in one execution.
"""

from __future__ import annotations

import pytest

from repro.core import (
    CornerCaseRoundTransport,
    SRBFromUnidirectional,
    SRBOracle,
    check_srb,
    run_classification,
)
from repro.crypto import SignatureScheme
from repro.sim import ReliableAsynchronous, Simulation


class TestAlgorithmOneOverCornerCase:
    """uni-from-RB (Appendix B, f=1) feeding SRB-from-uni (Algorithm 1):
    reliable broadcast ⇒ unidirectional rounds ⇒ sequenced reliable
    broadcast — two arrows composed, with the oracle at the bottom."""

    def test_composed_stack_delivers(self):
        n, t = 3, 1
        # two signature universes: one for the corner-case transport, one
        # for Algorithm 1's copy/L1 signatures
        transport_scheme = SignatureScheme(n, seed=100)
        proto_scheme = SignatureScheme(n, seed=200)
        # the oracle is the *transport* here; keep its events out of the trace
        oracle = SRBOracle(seed=3, record_trace=False)
        procs = [
            SRBFromUnidirectional(
                CornerCaseRoundTransport(
                    oracle, transport_scheme, transport_scheme.signer(p)
                ),
                sender=0, t=t, scheme=proto_scheme,
                signer=proto_scheme.signer(p),
            )
            for p in range(n)
        ]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.3), seed=3)
        oracle.bind(sim)
        sim.at(0.5, lambda: procs[0].broadcast("layered"))
        sim.at(1.0, lambda: procs[0].broadcast("cake"))
        sim.run(until=600.0)
        rep = check_srb(sim.trace, 0, range(n))
        rep.assert_ok()
        assert len(rep.deliveries) == n * 2


class TestFullClassification:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_arrows_verify_across_seeds(self, seed):
        result = run_classification(seed=seed)
        assert result.all_ok, result.failures()

    def test_negative_arrows_present(self):
        from repro.core.classification import ARROWS, NEGATIVE

        negatives = [a.arrow_id for a in ARROWS if a.kind == NEGATIVE]
        assert "SRB-x->UNI" in negatives
        assert "UNI-x->SYNC" in negatives
