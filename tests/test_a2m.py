"""Tests for native A2M devices and the TrInc-backed A2M reduction."""

from __future__ import annotations

import pytest

from repro.errors import AttestationError, ConfigurationError
from repro.hardware.a2m import A2MAuthority, A2MStatement, END, LOOKUP
from repro.hardware.a2m_from_trinc import (
    EndProof,
    LookupProof,
    TrincA2MChecker,
    TrincBackedA2M,
)
from repro.hardware.trinc import TrincAuthority


@pytest.fixture
def device():
    return A2MAuthority(2, seed=5).device(0)


@pytest.fixture
def authority_and_device():
    auth = A2MAuthority(2, seed=5)
    return auth, auth.device(0)


class TestNativeA2M:
    def test_create_append_lookup(self, authority_and_device):
        auth, d = authority_and_device
        log = d.create_log()
        assert d.append(log, "a") == 1
        assert d.append(log, "b") == 2
        s = d.lookup(log, 1, nonce="z")
        assert s.value == "a" and s.kind == LOOKUP and auth.check(s, 0)

    def test_lookup_out_of_range(self, device):
        log = device.create_log()
        device.append(log, "a")
        assert device.lookup(log, 0) is None
        assert device.lookup(log, 2) is None
        assert device.lookup(99, 1) is None

    def test_end_empty_and_nonempty(self, authority_and_device):
        auth, d = authority_and_device
        log = d.create_log()
        e0 = d.end(log, nonce=1)
        assert e0.index == 0 and e0.value is None and auth.check(e0, 0)
        d.append(log, "x")
        e1 = d.end(log, nonce=2)
        assert e1.index == 1 and e1.value == "x" and auth.check(e1, 0)

    def test_multiple_logs_independent(self, device):
        l1, l2 = device.create_log(), device.create_log()
        device.append(l1, "in-1")
        assert device.end(l2).index == 0
        assert device.log_ids() == (1, 2)

    def test_append_unknown_log(self, device):
        with pytest.raises(AttestationError):
            device.append(42, "x")

    def test_statement_tamper_rejected(self, authority_and_device):
        auth, d = authority_and_device
        log = d.create_log()
        d.append(log, "a")
        s = d.lookup(log, 1, nonce="z")
        forged = A2MStatement(s.device_id, s.kind, s.log_id, s.index, "evil",
                              s.nonce, s.tag)
        assert not auth.check(forged, 0)
        wrong_kind = A2MStatement(s.device_id, END, s.log_id, s.index, s.value,
                                  s.nonce, s.tag)
        assert not auth.check(wrong_kind, 0)

    def test_wrong_device_rejected(self, authority_and_device):
        auth, d = authority_and_device
        log = d.create_log()
        d.append(log, "a")
        assert not auth.check(d.lookup(log, 1), 1)

    def test_device_issued_once(self):
        auth = A2MAuthority(1, seed=0)
        auth.device(0)
        with pytest.raises(ConfigurationError):
            auth.device(0)


class TestTrincBackedA2M:
    @pytest.fixture
    def setup(self):
        auth = TrincAuthority(2, seed=9)
        host = TrincBackedA2M(auth.trinket(0))
        checker = TrincA2MChecker(auth)
        return auth, host, checker

    def test_lookup_proof_roundtrip(self, setup):
        _, host, checker = setup
        log = host.create_log()
        host.append(log, "a")
        host.append(log, "b")
        p = host.lookup(log, 2)
        assert isinstance(p, LookupProof)
        assert p.value == "b" and p.index == 2
        assert checker.check_lookup(p, 0, log, 2)

    def test_lookup_position_pinned(self, setup):
        _, host, checker = setup
        log = host.create_log()
        host.append(log, "a")
        host.append(log, "b")
        p = host.lookup(log, 1)
        assert not checker.check_lookup(p, 0, log, 2)
        assert not checker.check_lookup(p, 0, log + 1, 1)
        assert not checker.check_lookup(p, 1, log, 1)

    def test_end_proof_fresh_nonce(self, setup):
        _, host, checker = setup
        log = host.create_log()
        host.append(log, "a")
        p = host.end(log, nonce="challenge")
        assert isinstance(p, EndProof) and p.length == 1 and p.value == "a"
        assert checker.check_end(p, 0, log, nonce="challenge")
        assert not checker.check_end(p, 0, log, nonce="replayed")

    def test_end_proof_empty_log(self, setup):
        _, host, checker = setup
        log = host.create_log()
        p = host.end(log, nonce="n")
        assert p.length == 0 and p.last is None
        assert checker.check_end(p, 0, log, nonce="n")

    def test_end_proof_stale_last_rejected(self, setup):
        """A host cannot understate the log length: the status attestation
        pins the true counter, and a mismatched 'last' entry fails."""
        _, host, checker = setup
        log = host.create_log()
        host.append(log, "a")
        stale_end = host.end(log, nonce="n")  # length 1
        host.append(log, "b")
        fresh = host.end(log, nonce="n2")  # length 2, honest
        assert checker.check_end(fresh, 0, log, nonce="n2")
        # splice the old 'last' into a new status: lengths disagree
        forged = EndProof(status=fresh.status, last=stale_end.last)
        assert not checker.check_end(forged, 0, log, nonce="n2")

    def test_multiple_logs_use_distinct_counters(self, setup):
        _, host, checker = setup
        l1, l2 = host.create_log(), host.create_log()
        host.append(l1, "x")
        host.append(l2, "y")
        p1, p2 = host.lookup(l1, 1), host.lookup(l2, 1)
        assert checker.check_lookup(p1, 0, l1, 1)
        assert checker.check_lookup(p2, 0, l2, 1)
        assert not checker.check_lookup(p1, 0, l2, 1)

    def test_junk_rejected(self, setup):
        _, _, checker = setup
        assert not checker.check_lookup("junk", 0, 1, 1)
        assert not checker.check_end(("not", "an", "endproof"), 0, 1)
