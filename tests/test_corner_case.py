"""Tests for the f=1 corner case (Appendix B): RB implements unidirectionality."""

from __future__ import annotations

import pytest

from repro.core.directionality import check_directionality
from repro.core.rounds import POST, RoundProcess
from repro.core.srb_oracle import SRBOracle
from repro.core.uni_from_rb_corner import CornerCaseRoundTransport
from repro.crypto import SignatureScheme
from repro.errors import ConfigurationError
from repro.sim import SilentProcess, Simulation


class OneRound(RoundProcess):
    def __init__(self, transport):
        super().__init__(transport)
        self.posts = []

    def on_round_start(self):
        self.rounds.begin_round(("v", self.pid), label="r1")

    def on_round_message(self, label, src, payload):
        if label == POST:
            self.posts.append((src, payload))


def build(n, seed, silent=None, policy=None):
    scheme = SignatureScheme(n, seed=seed)
    oracle = SRBOracle(policy=policy, seed=seed)
    procs = []
    for pid in range(n):
        if pid == silent:
            procs.append(SilentProcess())
        else:
            procs.append(
                OneRound(CornerCaseRoundTransport(oracle, scheme, scheme.signer(pid)))
            )
    sim = Simulation(procs, seed=seed)
    oracle.bind(sim)
    if silent is not None:
        sim.declare_byzantine(silent)
    return sim, procs


class TestGuarantee:
    def test_all_correct_n3(self):
        sim, procs = build(3, seed=1)
        sim.run(until=100.0)
        rep = check_directionality(sim.trace, range(3))
        assert rep.is_unidirectional
        assert len(sim.trace.events("round_end")) == 3

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_one_silent_process(self, n):
        sim, procs = build(n, seed=2, silent=n - 1)
        sim.run(until=100.0)
        correct = list(range(n - 1))
        rep = check_directionality(sim.trace, correct)
        assert rep.is_unidirectional
        assert len(sim.trace.events("round_end")) == n - 1

    def test_partitioned_pair_rescued_by_relay(self):
        """Direct 0<->1 RB deliveries withheld; Q's phase-2 bundle carries
        the values — the crux of the appendix proof."""
        def policy(s, r, k, now):
            return None if (s, r) in ((0, 1), (1, 0)) else 0.05

        sim, procs = build(3, seed=3, policy=policy)
        sim.run(until=100.0)
        rep = check_directionality(sim.trace, range(3))
        assert rep.is_unidirectional
        # both partitioned processes must have received the other via bundles
        recvs_0 = {e.field("src") for e in sim.trace.events("round_recv", pid=0)}
        recvs_1 = {e.field("src") for e in sim.trace.events("round_recv", pid=1)}
        assert 1 in recvs_0 or 0 in recvs_1

    def test_multiple_sequential_rounds(self):
        class TwoRounds(OneRound):
            def on_round_complete(self, label):
                if label == "r1":
                    self.rounds.begin_round(("w", self.pid), label="r2")

        scheme = SignatureScheme(3, seed=4)
        oracle = SRBOracle(seed=4)
        procs = [
            TwoRounds(CornerCaseRoundTransport(oracle, scheme, scheme.signer(p)))
            for p in range(3)
        ]
        sim = Simulation(procs, seed=4)
        oracle.bind(sim)
        sim.run(until=200.0)
        rep = check_directionality(sim.trace, range(3))
        assert rep.is_unidirectional and rep.rounds_checked == 2
        assert len(sim.trace.events("round_end")) == 6

    def test_posts_delivered(self):
        sim, procs = build(3, seed=5)
        sim.at(0.5, lambda: procs[0].rounds.post("extra"))
        sim.run(until=100.0)
        for p in procs[1:]:
            assert (0, "extra") in p.posts


class TestConfiguration:
    def test_f_must_be_one(self):
        scheme = SignatureScheme(5, seed=6)
        oracle = SRBOracle(seed=6)
        with pytest.raises(ConfigurationError, match="f=1"):
            CornerCaseRoundTransport(oracle, scheme, scheme.signer(0), f=2)

    def test_forged_phase1_signature_ignored(self):
        """A Byzantine relay cannot inject values for other processes."""
        from repro.crypto.signatures import Signature

        sim, procs = build(3, seed=7)

        def inject():
            # a bogus P1 claiming to be from process 1 with a junk signature
            fake_sig = Signature(signer=1, tag=b"\x00" * 32)
            h = procs[0].rounds._handle
            h.broadcast(("P1", "r1", ("forged", 1), fake_sig))

        sim.at(0.05, inject)
        sim.run(until=100.0)
        forged = [
            e for e in sim.trace.events("round_recv")
            if e.field("payload") == ("forged", 1)
        ]
        assert forged == []
