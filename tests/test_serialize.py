"""Unit + property tests for canonical serialization."""

from __future__ import annotations

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.serialize import (
    caching_disabled,
    canonical_bytes,
    content_hash,
    type_fingerprint,
)
from repro.errors import SignatureError


@dataclass(frozen=True)
class Point:
    x: int
    y: int


@dataclass(frozen=True)
class Point3:
    x: int
    y: int
    z: int


class TestBasicEncoding:
    def test_none(self):
        assert canonical_bytes(None) == b"N"

    def test_booleans_distinct_from_ints(self):
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes(False) != canonical_bytes(0)

    def test_int_zero_vs_negative(self):
        assert canonical_bytes(0) != canonical_bytes(-0 - 1)

    def test_large_ints(self):
        big = 2**200
        assert canonical_bytes(big) != canonical_bytes(big + 1)

    def test_str_bytes_distinct(self):
        assert canonical_bytes("ab") != canonical_bytes(b"ab")

    def test_tuple_list_equivalent(self):
        assert canonical_bytes((1, 2)) == canonical_bytes([1, 2])

    def test_nested_structures(self):
        v1 = ("a", (1, 2), {"k": (3,)})
        v2 = ("a", (1, 2), {"k": (3, None)})
        assert canonical_bytes(v1) != canonical_bytes(v2)

    def test_dict_order_independent(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})

    def test_frozenset_order_independent(self):
        assert canonical_bytes(frozenset([1, 2, 3])) == canonical_bytes(
            frozenset([3, 1, 2])
        )

    def test_dataclass_fields_encoded(self):
        assert canonical_bytes(Point(1, 2)) != canonical_bytes(Point(2, 1))

    def test_dataclass_type_name_encoded(self):
        class Fake:
            pass

        assert canonical_bytes(Point(1, 2)) != canonical_bytes(Point3(1, 2, 0))

    def test_unsupported_type_raises(self):
        with pytest.raises(SignatureError):
            canonical_bytes(object())

    def test_unsupported_nested_raises(self):
        with pytest.raises(SignatureError):
            canonical_bytes((1, object()))

    def test_content_hash_is_32_bytes(self):
        assert len(content_hash(("x", 1))) == 32

    def test_float_encoding(self):
        assert canonical_bytes(1.5) != canonical_bytes(1.25)
        assert canonical_bytes(1.0) != canonical_bytes(1)


# -- the injectivity-critical cases: container boundaries -----------------------


class TestBoundaryConfusion:
    """Values that naive encodings confuse must stay distinct."""

    def test_tuple_nesting(self):
        assert canonical_bytes(((1,), 2)) != canonical_bytes((1, (2,)))

    def test_string_concatenation(self):
        assert canonical_bytes(("ab", "c")) != canonical_bytes(("a", "bc"))

    def test_empty_containers(self):
        assert canonical_bytes(()) != canonical_bytes("")
        assert canonical_bytes(()) != canonical_bytes({})
        assert canonical_bytes({}) != canonical_bytes(frozenset())

    def test_str_that_looks_like_int(self):
        assert canonical_bytes("1") != canonical_bytes(1)


values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.text(max_size=8)
    | st.binary(max_size=8),
    lambda children: st.tuples(children, children)
    | st.dictionaries(st.text(max_size=4), children, max_size=3),
    max_leaves=10,
)


class TestProperties:
    @given(values)
    @settings(max_examples=200)
    def test_deterministic(self, v):
        assert canonical_bytes(v) == canonical_bytes(v)

    @given(values, values)
    @settings(max_examples=300)
    def test_injective_on_samples(self, a, b):
        if canonical_bytes(a) == canonical_bytes(b):
            # encoding collision implies the values are equal (tuple/list
            # equivalence is intentional; the strategies only make tuples)
            assert a == b

    @given(values)
    @settings(max_examples=100)
    def test_hash_matches_bytes(self, v):
        import hashlib

        assert content_hash(v) == hashlib.sha256(canonical_bytes(v)).digest()

    @given(values)
    @settings(max_examples=200)
    def test_fingerprint_cached_identical_to_uncached(self, v):
        with caching_disabled():
            reference = type_fingerprint(v)
        # first call may populate the identity LRU, second must hit it
        assert type_fingerprint(v) == reference
        assert type_fingerprint(v) == reference
