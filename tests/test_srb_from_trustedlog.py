"""Tests for SRB built on trusted logs (TrInc and A2M variants)."""

from __future__ import annotations

import pytest

from repro.core.srb import check_srb
from repro.core.srb_from_trinc import SRBFromA2M, SRBFromTrInc
from repro.errors import ConfigurationError
from repro.hardware import A2MAuthority, TrincAuthority
from repro.sim import ReliableAsynchronous, ScriptedAdversary, Simulation


def make_trinc_system(n, seed, sender=0):
    auth = TrincAuthority(n, seed=seed)
    procs = [
        SRBFromTrInc(sender, n, auth,
                     trinket=auth.trinket(p) if p == sender else None)
        for p in range(n)
    ]
    return auth, procs


class TestTrIncVariant:
    def test_stream_delivery(self):
        _, procs = make_trinc_system(4, seed=1)
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.5), seed=1)
        for i, m in enumerate(["a", "b", "c"]):
            sim.at(0.1 * (i + 1), lambda m=m: procs[0].broadcast(m))
        sim.run_to_quiescence()
        rep = check_srb(sim.trace, 0, range(4))
        rep.assert_ok()
        assert len(rep.deliveries) == 12

    def test_no_quorum_needed_n2(self):
        """Trusted logs give SRB even at n = 2 (no quorum anywhere)."""
        _, procs = make_trinc_system(2, seed=2)
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.5), seed=2)
        sim.at(0.1, lambda: procs[0].broadcast("tiny"))
        sim.run_to_quiescence()
        check_srb(sim.trace, 0, range(2)).assert_ok()

    def test_relay_through_echo(self):
        """Sender reaches only one receiver directly; echo must spread it."""
        adv = ScriptedAdversary(base_delay=0.05).withhold([0], [2]).withhold([0], [3])
        _, procs = make_trinc_system(4, seed=3)
        sim = Simulation(procs, adv, seed=3)
        sim.at(0.1, lambda: procs[0].broadcast("spread-me"))
        sim.run_to_quiescence()
        check_srb(sim.trace, 0, range(4)).assert_ok()

    def test_byzantine_counter_skip_stalls_stream_safely(self):
        """A sender that skips counter values produces no valid position —
        correct processes deliver nothing rather than something wrong."""
        auth, procs = make_trinc_system(3, seed=4)
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.3), seed=4)
        sim.declare_byzantine(0)

        def skip():
            trinket = procs[0].trinket
            att = trinket.attest(5, "gap", counter_id=0)  # skips 1..4
            procs[0].ctx.record("bcast", seq=5, value="gap")
            procs[0].ctx.broadcast(("SRB-TL", att), include_self=False)

        sim.at(0.1, skip)
        sim.run_to_quiescence()
        rep = check_srb(sim.trace, 0, [1, 2], sender_correct=False)
        assert rep.ok and not rep.deliveries

    def test_replayed_attestation_delivered_once(self):
        _, procs = make_trinc_system(3, seed=5)
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.3), seed=5)
        sim.at(0.1, lambda: procs[0].broadcast("once"))
        # the echo mechanism already re-sends every attestation; dedup must hold
        sim.run_to_quiescence()
        rep = check_srb(sim.trace, 0, range(3))
        rep.assert_ok()
        assert len(rep.deliveries) == 3

    def test_out_of_order_arrival_buffers(self):
        """Seq 2 arriving before seq 1 must wait (property 3)."""
        class Slow1(ScriptedAdversary):
            def message_delay(self, src, dst, msg, now):
                # delay the first broadcast's deliveries more than the second's
                if msg[0] == "SRB-TL" and getattr(msg[1], "seq", 0) == 1:
                    return 5.0
                return 0.05

        _, procs = make_trinc_system(3, seed=6)
        sim = Simulation(procs, Slow1(), seed=6)
        sim.at(0.1, lambda: procs[0].broadcast("first"))
        sim.at(0.2, lambda: procs[0].broadcast("second"))
        sim.run_to_quiescence()
        rep = check_srb(sim.trace, 0, range(3))
        rep.assert_ok()

    def test_sender_needs_trinket(self):
        auth = TrincAuthority(2, seed=7)
        procs = [SRBFromTrInc(0, 2, auth, trinket=None) for _ in range(2)]
        sim = Simulation(procs, seed=7)
        sim.run(until=0.1)
        with pytest.raises(ConfigurationError):
            procs[0].broadcast("no-hardware")


class TestA2MVariant:
    def test_stream_delivery(self):
        auth = A2MAuthority(3, seed=8)
        procs = [
            SRBFromA2M(0, 3, auth, device=auth.device(p) if p == 0 else None)
            for p in range(3)
        ]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.5), seed=8)
        sim.at(0.1, lambda: procs[0].broadcast("m1"))
        sim.at(0.2, lambda: procs[0].broadcast("m2"))
        sim.run_to_quiescence()
        rep = check_srb(sim.trace, 0, range(3))
        rep.assert_ok()
        assert len(rep.deliveries) == 6

    def test_junk_statements_ignored(self):
        from repro.sim import Process

        class Junker(Process):
            def on_start(self):
                self.ctx.broadcast(("SRB-TL", "not-a-statement"), include_self=False)

        auth = A2MAuthority(3, seed=9)
        procs = [
            SRBFromA2M(0, 3, auth, device=auth.device(0)),
            SRBFromA2M(0, 3, auth),
            Junker(),
        ]
        sim = Simulation(procs, seed=9)
        sim.declare_byzantine(2)
        sim.run_to_quiescence()
        rep = check_srb(sim.trace, 0, [0, 1], sender_correct=True)
        assert rep.ok and not rep.deliveries
