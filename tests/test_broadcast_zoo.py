"""Tests for the broadcast problem zoo: Bracha, NEB, Dolev–Strong."""

from __future__ import annotations

import pytest

from repro.broadcast import (
    BOT,
    BrachaRBC,
    DolevStrong,
    NonEquivocatingBroadcast,
    check_byzantine_broadcast,
    check_nonequivocating_broadcast,
    check_reliable_broadcast,
)
from repro.broadcast.dolev_strong import ds_domain, validate_chain
from repro.broadcast.nonequivocating import _neb_domain
from repro.core.rounds import LockStepRoundTransport, SharedMemoryRoundTransport, TimedRoundTransport
from repro.core.uni_from_sm import build_objects_for
from repro.crypto import SignatureScheme
from repro.errors import ConfigurationError
from repro.sim import LockStepSynchronous, ReliableAsynchronous, Simulation


class TestBracha:
    def build(self, n, f, seed, strict=True):
        procs = [BrachaRBC(0, n, f, strict=strict) for _ in range(n)]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.5), seed=seed)
        return sim, procs

    def test_happy_path(self):
        sim, procs = self.build(4, 1, seed=1)
        sim.at(0.1, lambda: procs[0].broadcast("v"))
        sim.run_to_quiescence()
        check_reliable_broadcast(sim.trace, 0, "v", range(4), True).assert_ok()

    def test_tolerates_f_crashes(self):
        sim, procs = self.build(7, 2, seed=2)
        sim.crash(5)
        sim.crash(6)
        sim.at(0.1, lambda: procs[0].broadcast("v"))
        sim.run_to_quiescence()
        check_reliable_broadcast(sim.trace, 0, "v", range(5), True).assert_ok()

    def test_below_bound_rejected_strict(self):
        with pytest.raises(ConfigurationError, match="3f\\+1"):
            BrachaRBC(0, 3, 1)

    def test_below_bound_loses_liveness_not_safety(self):
        """At n = 3, f = 1 with one crash, quorums never form: nobody commits."""
        procs = [BrachaRBC(0, 3, 1, strict=False) for _ in range(3)]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.5), seed=3)
        sim.crash(2)
        sim.at(0.1, lambda: procs[0].broadcast("v"))
        sim.run_to_quiescence()
        assert sim.trace.decisions() == []

    def test_echo_amplification_from_readies(self):
        """A process that missed the SEND still commits via f+1 READYs."""
        from repro.sim import ScriptedAdversary

        adv = ScriptedAdversary(base_delay=0.05).withhold([0], [3])
        procs = [BrachaRBC(0, 4, 1) for _ in range(4)]
        sim = Simulation(procs, adv, seed=4)
        sim.at(0.1, lambda: procs[0].broadcast("v"))
        sim.run_to_quiescence()
        rep = check_reliable_broadcast(sim.trace, 0, "v", range(4), True)
        rep.assert_ok()

    def test_junk_ignored(self):
        from repro.sim import BabblerProcess

        procs = [BrachaRBC(0, 4, 1) for _ in range(3)] + [BabblerProcess(rounds=5)]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.3), seed=5)
        sim.declare_byzantine(3)
        sim.at(0.1, lambda: procs[0].broadcast("v"))
        sim.run(until=100.0)
        rep = check_reliable_broadcast(sim.trace, 0, "v", range(3), True)
        rep.assert_ok()


class TestNEB:
    def build_sm(self, n, seed):
        scheme = SignatureScheme(n, seed=seed)
        procs = [
            NonEquivocatingBroadcast(
                SharedMemoryRoundTransport(), 0, scheme, scheme.signer(p)
            )
            for p in range(n)
        ]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.8), seed=seed)
        for obj in build_objects_for("append-log", n):
            sim.memory.register(obj)
        return sim, procs, scheme

    def test_honest_sender_all_commit(self):
        sim, procs, _ = self.build_sm(4, seed=1)
        sim.at(0.2, lambda: procs[0].broadcast("v"))
        sim.run(until=300.0)
        rep = check_nonequivocating_broadcast(sim.trace, 0, "v", range(4), True)
        rep.assert_ok()

    def test_n_equals_f_plus_1(self):
        """The striking bound: NEB works with just 2 processes, f = 1."""
        sim, procs, _ = self.build_sm(2, seed=2)
        sim.at(0.2, lambda: procs[0].broadcast("v"))
        sim.run(until=300.0)
        rep = check_nonequivocating_broadcast(sim.trace, 0, "v", range(2), True)
        rep.assert_ok()

    def test_equivocation_over_timed_rounds_agreement_up_to_bot(self):
        n = 4
        scheme = SignatureScheme(n, seed=3)
        signers = [scheme.signer(p) for p in range(n)]

        class Equiv(NonEquivocatingBroadcast):
            def equivocate(self):
                for dst in range(self.ctx.n):
                    v = "A" if dst < 2 else "B"
                    sig = self.signer.sign(_neb_domain(self.sender, v))
                    self.ctx.send(
                        dst, ("__round__", ("__post__",), ("NEB-VAL", v, sig))
                    )

        procs = [
            (Equiv if p == 0 else NonEquivocatingBroadcast)(
                TimedRoundTransport(wait=2.0), 0, scheme, signers[p]
            )
            for p in range(n)
        ]
        sim = Simulation(procs, ReliableAsynchronous(0.0, 1.0), seed=3)
        sim.declare_byzantine(0)
        sim.at(0.2, lambda: procs[0].equivocate())
        sim.run(until=100.0)
        rep = check_nonequivocating_broadcast(
            sim.trace, 0, None, [1, 2, 3], sender_correct=False
        )
        rep.assert_ok()
        non_bot = {v for v in rep.commits.values() if v is not BOT}
        assert len(non_bot) <= 1

    def test_forged_sender_signature_ignored(self):
        from repro.crypto.signatures import Signature

        sim, procs, scheme = self.build_sm(3, seed=4)

        def forge():
            fake = Signature(signer=0, tag=b"\x00" * 32)
            procs[1].rounds.post(("NEB-VAL", "forged", fake))

        sim.at(0.2, forge)
        sim.run(until=200.0)
        assert sim.trace.decisions() == []

    def test_non_sender_cannot_broadcast(self):
        sim, procs, _ = self.build_sm(3, seed=5)
        sim.run(until=1.0)
        with pytest.raises(ConfigurationError):
            procs[1].broadcast("nope")


class TestDolevStrong:
    def build(self, n, f, seed, sender_cls=None, my_input="V"):
        scheme = SignatureScheme(n, seed=seed)
        procs = []
        for p in range(n):
            cls = sender_cls if (p == 0 and sender_cls) else DolevStrong
            procs.append(
                cls(LockStepRoundTransport(period=2.0), 0, f, scheme,
                    scheme.signer(p), my_input=my_input if p == 0 else None)
            )
        sim = Simulation(procs, LockStepSynchronous(delta=1.0), seed=seed)
        return sim, procs, scheme

    def test_honest_sender(self):
        sim, procs, _ = self.build(4, 1, seed=1)
        sim.run(until=40.0)
        rep = check_byzantine_broadcast(sim.trace, 0, "V", range(4), True)
        rep.assert_ok()
        assert all(v == "V" for v in rep.commits.values())

    def test_silent_sender_commits_default(self):
        sim, procs, _ = self.build(4, 1, seed=2)
        sim.declare_byzantine(0)
        sim.crash(0)
        sim.run(until=40.0)
        rep = check_byzantine_broadcast(sim.trace, 0, None, [1, 2, 3], False)
        rep.assert_ok()
        assert all(v is BOT for v in rep.commits.values())

    def test_equivocating_sender_detected(self):
        class EquivDS(DolevStrong):
            def on_round_start(self):
                for dst in range(self.ctx.n):
                    v = "A" if dst <= 1 else "B"
                    sig = self.signer.sign(ds_domain(self.sender, v, ()))
                    self.ctx.send(
                        dst, ("__round__", 1, ((v, ((self.sender, sig),)),))
                    )
                self.rounds.begin_round(())

        sim, procs, _ = self.build(4, 1, seed=3, sender_cls=EquivDS, my_input="A")
        sim.declare_byzantine(0)
        sim.run(until=40.0)
        rep = check_byzantine_broadcast(sim.trace, 0, "A", [1, 2, 3], False)
        rep.assert_ok()  # agreement + termination hold; value is consistent

    def test_f2_needs_three_forwarding_rounds(self):
        sim, procs, _ = self.build(5, 2, seed=4)
        sim.run(until=60.0)
        rep = check_byzantine_broadcast(sim.trace, 0, "V", range(5), True)
        rep.assert_ok()

    def test_chain_validation(self):
        scheme = SignatureScheme(3, seed=5)
        s0, s1 = scheme.signer(0), scheme.signer(1)
        sig0 = s0.sign(ds_domain(0, "v", ()))
        chain1 = ("v", ((0, sig0),))
        assert validate_chain(scheme, 0, chain1) == ("v", (0,))
        sig1 = s1.sign(ds_domain(0, "v", (0,)))
        chain2 = ("v", ((0, sig0), (1, sig1)))
        assert validate_chain(scheme, 0, chain2) == ("v", (0, 1))
        # wrong order of signatures fails
        bad = ("v", ((1, sig1), (0, sig0)))
        assert validate_chain(scheme, 0, bad) is None
        # duplicate signer fails
        dup = ("v", ((0, sig0), (0, sig0)))
        assert validate_chain(scheme, 0, dup) is None
        # chain not starting at the sender fails
        sig1_first = s1.sign(ds_domain(0, "v", ()))
        notsender = ("v", ((1, sig1_first),))
        assert validate_chain(scheme, 0, notsender) is None

    def test_late_injection_rejected(self):
        """A 1-signature chain arriving in round 2 is ignored (needs >= 2)."""
        scheme = SignatureScheme(3, seed=6)
        signers = [scheme.signer(p) for p in range(3)]

        class LateInjector(DolevStrong):
            def on_round_complete(self, label):
                if label == 1:
                    # inject a fresh value with only the sender's signature
                    sig = self.signer.sign(ds_domain(0, "LATE", ()))
                    self.ctx.broadcast(
                        ("__round__", 2, (("LATE", ((0, sig),)),)),
                        include_self=False,
                    )
                super().on_round_complete(label)

        procs = [
            (LateInjector if p == 0 else DolevStrong)(
                LockStepRoundTransport(period=2.0), 0, 1, scheme, signers[p],
                my_input="V" if p == 0 else None,
            )
            for p in range(3)
        ]
        sim = Simulation(procs, LockStepSynchronous(delta=1.0), seed=6)
        sim.declare_byzantine(0)
        sim.run(until=40.0)
        rep = check_byzantine_broadcast(sim.trace, 0, "V", [1, 2], False)
        rep.assert_ok()
        # LATE must not have been extracted by the correct processes:
        # they commit V (the round-1 value), not BOT
        assert set(rep.commits.values()) == {"V"}
