"""Unit tests for the admission-control policies and the brownout ladder."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.admission import (
    AdmissionDecision,
    BoundedAdmissionQueue,
    FairShare,
    QueueDeadline,
    QueuedRequest,
    REASONS,
    TokenBucket,
)
from repro.service.degrade import (
    BROWNOUT,
    BrownoutController,
    NORMAL,
    OPEN,
)


class TestTokenBucket:
    def test_burst_then_rate_limit(self):
        b = TokenBucket(rate=1.0, burst=3.0)
        assert all(b.try_admit(0.0) for _ in range(3))
        assert not b.try_admit(0.0)  # burst exhausted
        assert b.try_admit(1.0)  # one token accrued
        assert not b.try_admit(1.0)

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate=10.0, burst=2.0)
        assert b.try_admit(0.0)
        # a long quiet period cannot bank more than `burst` tokens
        assert all(b.try_admit(100.0) for _ in range(2))
        assert not b.try_admit(100.0)

    def test_retry_after_estimates_next_token(self):
        b = TokenBucket(rate=2.0, burst=1.0)
        assert b.try_admit(0.0)
        assert b.retry_after(0.0) == pytest.approx(0.5)
        assert b.retry_after(0.25) == pytest.approx(0.25)
        assert b.retry_after(10.0) == 0.0

    def test_deterministic_counters(self):
        b = TokenBucket(rate=1.0, burst=2.0)
        for t in (0.0, 0.0, 0.0, 5.0):
            b.try_admit(t)
        assert (b.admitted, b.shed) == (3, 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0.5)


class TestFairShare:
    def test_caps_one_tenant_without_touching_others(self):
        fair = FairShare(per_tenant=2)
        assert fair.try_admit("a")
        fair.acquire("a")
        assert fair.try_admit("a")
        fair.acquire("a")
        assert not fair.try_admit("a")  # at cap
        assert fair.try_admit("b")  # isolation: b unaffected
        assert fair.shed == 1

    def test_release_restores_capacity(self):
        fair = FairShare(per_tenant=1)
        fair.acquire("a")
        assert not fair.try_admit("a")
        fair.release("a")
        assert fair.try_admit("a")
        assert fair.held("a") == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FairShare(per_tenant=0)


class TestQueueDeadline:
    def test_transient_burst_not_dropped(self):
        codel = QueueDeadline(target=1.0, interval=4.0)
        # above target, but the episode has not lasted an interval yet
        assert not codel.should_drop(0.0, sojourn=2.0)
        assert not codel.should_drop(3.0, sojourn=2.0)
        # a single below-target sojourn ends the episode
        assert not codel.should_drop(3.5, sojourn=0.5)
        assert not codel.should_drop(4.5, sojourn=2.0)  # fresh episode

    def test_standing_queue_dropped_with_tightening_law(self):
        codel = QueueDeadline(target=1.0, interval=4.0)
        assert not codel.should_drop(0.0, sojourn=2.0)  # arms the episode
        assert codel.should_drop(4.0, sojourn=2.0)  # interval elapsed
        # after the first drop the next point is interval/sqrt(1) away ...
        assert not codel.should_drop(7.9, sojourn=2.0)
        assert codel.should_drop(8.0, sojourn=2.0)
        # ... and then tightens to interval/sqrt(2)
        assert not codel.should_drop(8.1, sojourn=2.0)
        assert codel.should_drop(8.0 + 4.0 / 2**0.5 + 0.01, sojourn=2.0)
        assert codel.shed == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QueueDeadline(target=0.0, interval=1.0)


class TestBoundedAdmissionQueue:
    def _req(self, req_id, t=0.0):
        return QueuedRequest("t", req_id, ("op",), None, t)

    def test_bound_enforced_fifo_preserved(self):
        q = BoundedAdmissionQueue(maxlen=2)
        assert q.try_push(self._req(1))
        assert q.try_push(self._req(2))
        assert not q.try_push(self._req(3))
        assert q.pop().req_id == 1
        assert q.try_push(self._req(3))
        assert [q.pop().req_id for _ in range(2)] == [2, 3]
        assert (q.depth_peak, q.enqueued, q.shed) == (2, 3, 1)

    def test_unbounded_mode(self):
        q = BoundedAdmissionQueue(maxlen=None)
        for i in range(100):
            assert q.try_push(self._req(i))
        assert len(q) == 100 and q.shed == 0

    def test_head_sojourn(self):
        q = BoundedAdmissionQueue(maxlen=None)
        assert q.head_sojourn(5.0) == 0.0
        q.try_push(self._req(1, t=2.0))
        assert q.head_sojourn(5.0) == pytest.approx(3.0)


class TestAdmissionDecision:
    def test_truthiness_and_reason_validation(self):
        assert AdmissionDecision(True)
        assert not AdmissionDecision(False, "queue_full")
        with pytest.raises(ConfigurationError):
            AdmissionDecision(False, "because")
        assert "queue_full" in REASONS


class TestBrownoutController:
    def test_depth_overload_walks_the_ladder(self):
        c = BrownoutController(depth_high=10.0, alpha=1.0, cooldown=2)
        assert c.observe(0.0, 5) == NORMAL
        assert c.observe(1.0, 15) == BROWNOUT
        assert c.sheds_writes() and not c.sheds_all()
        assert c.observe(2.0, 25) == OPEN  # past depth_high * open_factor
        assert c.sheds_all()

    def test_recovery_needs_a_full_calm_streak_and_steps_one_rung(self):
        c = BrownoutController(depth_high=10.0, depth_low=2.0, alpha=1.0,
                               cooldown=3)
        c.observe(0.0, 25)
        assert c.mode == OPEN
        # two calm samples: not enough
        assert c.observe(1.0, 0) == OPEN
        assert c.observe(2.0, 0) == OPEN
        # third completes the streak: one rung down, not straight to NORMAL
        assert c.observe(3.0, 0) == BROWNOUT
        for t in (4.0, 5.0):
            c.observe(t, 0)
        assert c.observe(6.0, 0) == NORMAL
        assert c.recoveries == 2

    def test_hot_sample_resets_the_streak(self):
        c = BrownoutController(depth_high=10.0, depth_low=2.0, alpha=1.0,
                               cooldown=2)
        c.observe(0.0, 15)
        assert c.mode == BROWNOUT
        c.observe(1.0, 0)
        c.observe(2.0, 15)  # hot again: streak dies
        c.observe(3.0, 0)
        assert c.mode == BROWNOUT  # still needs a fresh full streak
        c.observe(4.0, 0)
        assert c.mode == NORMAL

    def test_completion_silence_trips_phi_signal(self):
        c = BrownoutController(depth_high=1000.0, phi_high=2.0, alpha=1.0)
        # a steady completion heartbeat, then silence
        for t in range(10):
            c.note_completion(float(t))
        assert c.observe(10.0, 0) == NORMAL
        # long silence relative to the 1s cadence: phi exceeds the bar
        # even though the queue is empty (the stalled-backend blind spot
        # depth alone cannot see)
        assert c.observe(60.0, 0) == BROWNOUT

    def test_idle_backend_silence_is_not_a_stall(self):
        c = BrownoutController(depth_high=1000.0, phi_high=2.0, alpha=1.0)
        for t in range(10):
            c.note_completion(float(t))
        # same silence as the phi test above, but nothing outstanding:
        # an idle backend is silent because it is idle
        assert c.observe(60.0, 0, busy=False) == NORMAL

    def test_shedding_induced_silence_cannot_latch_brownout(self):
        c = BrownoutController(depth_high=1000.0, phi_high=2.0, alpha=1.0,
                               cooldown=2)
        for t in range(10):
            c.note_completion(float(t))
        assert c.observe(60.0, 0, busy=True) == BROWNOUT  # stalled while busy
        # the shed writes stopped the completion heartbeat; once the
        # backend has drained, that silence is self-inflicted and must
        # not keep the controller hot
        c.observe(61.0, 0, busy=False)
        assert c.observe(62.0, 0, busy=False) == NORMAL

    def test_counters_and_mode_name(self):
        c = BrownoutController(depth_high=10.0, alpha=1.0, cooldown=1,
                               depth_low=2.0)
        c.observe(0.0, 15)
        c.observe(1.0, 0)
        assert (c.brownout_entries, c.recoveries) == (1, 1)
        assert c.mode_name == "normal"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BrownoutController(depth_high=0.0)
        with pytest.raises(ConfigurationError):
            BrownoutController(depth_high=10.0, depth_low=20.0)
        with pytest.raises(ConfigurationError):
            BrownoutController(depth_high=10.0, open_factor=1.0)
        with pytest.raises(ConfigurationError):
            BrownoutController(depth_high=10.0, cooldown=0)
