"""Every example script must run to completion with exit code 0."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable: at least three runnable examples
