"""Tests for TrInc trinkets and the attestation authority."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AttestationError, ConfigurationError
from repro.hardware.trinc import Attestation, StatusAttestation, TrincAuthority


@pytest.fixture
def auth():
    return TrincAuthority(3, seed=11)


class TestAttest:
    def test_first_attestation(self, auth):
        t = auth.trinket(0)
        a = t.attest(1, "m")
        assert a is not None and a.prev == 0 and a.seq == 1
        assert auth.check(a, 0)

    def test_monotone_refusal(self, auth):
        t = auth.trinket(0)
        assert t.attest(5, "m") is not None
        assert t.attest(5, "other") is None
        assert t.attest(4, "other") is None
        assert t.attest_refusals == 2

    def test_skipping_allowed_and_prev_recorded(self, auth):
        t = auth.trinket(0)
        t.attest(2, "a")
        a = t.attest(10, "b")
        assert a.prev == 2 and a.seq == 10

    def test_independent_counters(self, auth):
        t = auth.trinket(0)
        a0 = t.attest(1, "m", counter_id=0)
        a1 = t.attest(1, "m", counter_id=1)
        assert a0 is not None and a1 is not None
        assert t.last_seq(0) == 1 and t.last_seq(1) == 1 and t.last_seq(2) == 0

    def test_invalid_inputs(self, auth):
        t = auth.trinket(0)
        with pytest.raises(AttestationError):
            t.attest(0, "m")
        with pytest.raises(AttestationError):
            t.attest("x", "m")
        with pytest.raises(AttestationError):
            t.attest(1, "m", counter_id=-1)


class TestCheck:
    def test_wrong_trinket_rejected(self, auth):
        a = auth.trinket(0).attest(1, "m")
        assert not auth.check(a, 1)

    def test_tampered_message_rejected(self, auth):
        a = auth.trinket(0).attest(1, "m")
        forged = Attestation(a.trinket_id, a.counter_id, a.prev, a.seq, "evil", a.tag)
        assert not auth.check(forged, 0)

    def test_tampered_seq_rejected(self, auth):
        a = auth.trinket(0).attest(1, "m")
        forged = Attestation(a.trinket_id, a.counter_id, 1, 2, a.message, a.tag)
        assert not auth.check(forged, 0)

    def test_nonsense_shapes_rejected(self, auth):
        assert not auth.check("junk", 0)
        assert not auth.check(None, 0)
        a = auth.trinket(1).attest(1, "m")
        bad_prev = Attestation(1, 0, -1, 1, "m", a.tag)
        assert not auth.check(bad_prev, 1)

    def test_cross_authority_rejected(self):
        a1 = TrincAuthority(2, seed=1)
        a2 = TrincAuthority(2, seed=2)
        att = a1.trinket(0).attest(1, "m")
        assert not a2.check(att, 0)


class TestStatus:
    def test_status_reflects_counter(self, auth):
        t = auth.trinket(0)
        s0 = t.status(nonce="n")
        assert s0.value == 0 and auth.check_status(s0, 0)
        t.attest(3, "m")
        s1 = t.status(nonce="n")
        assert s1.value == 3 and auth.check_status(s1, 0)

    def test_status_does_not_advance(self, auth):
        t = auth.trinket(0)
        t.status()
        assert t.attest(1, "m") is not None

    def test_status_nonce_bound(self, auth):
        t = auth.trinket(0)
        s = t.status(nonce="fresh")
        forged = StatusAttestation(s.trinket_id, s.counter_id, s.value, "stale", s.tag)
        assert not auth.check_status(forged, 0)

    def test_status_wrong_device(self, auth):
        s = auth.trinket(0).status()
        assert not auth.check_status(s, 1)


class TestIssuance:
    def test_trinket_issued_once(self, auth):
        auth.trinket(2)
        with pytest.raises(ConfigurationError):
            auth.trinket(2)

    def test_out_of_range(self, auth):
        with pytest.raises(ConfigurationError):
            auth.trinket(3)

    def test_zero_devices_rejected(self):
        with pytest.raises(ConfigurationError):
            TrincAuthority(0)


class TestNonEquivocationProperty:
    @given(st.lists(st.tuples(st.integers(1, 30), st.text(max_size=4)), max_size=20))
    @settings(max_examples=60)
    def test_at_most_one_attestation_per_counter_value(self, calls):
        """However the host drives Attest, no counter value binds two messages."""
        auth = TrincAuthority(1, seed=42)
        t = auth.trinket(0)
        issued = {}
        for c, m in calls:
            a = t.attest(c, m)
            if a is not None:
                assert auth.check(a, 0)
                assert a.seq not in issued
                issued[a.seq] = m

    @given(st.lists(st.integers(1, 20), min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_counter_strictly_increases(self, seqs):
        auth = TrincAuthority(1, seed=7)
        t = auth.trinket(0)
        last = 0
        for c in seqs:
            a = t.attest(c, "m")
            if a is not None:
                assert a.seq > last and a.prev == last
                last = a.seq
            else:
                assert c <= last
