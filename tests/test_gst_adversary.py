"""Tests for the partial-synchrony GST adversary."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.faults.adversaries import ChaosAdversary, GSTAdversary
from repro.sim import Process, Simulation


def make_gst(gst=50.0, delta=1.0, **kw):
    adv = GSTAdversary(
        n=4, gst=gst, delta=delta,
        drop_probability=0.3, dup_probability=0.2,
        straggler_probability=0.1, n_bursts=1, n_partitions=1,
        **kw,
    )
    adv.bind(random.Random(7))
    return adv


class TestGSTAdversary:
    def test_post_gst_delay_bounded_by_delta(self):
        adv = make_gst(gst=50.0, delta=1.5)
        for i in range(500):
            d = adv.message_delay(0, 1, ("m", i), now=50.0 + i * 0.1)
            assert d is not None, "post-GST drops are forbidden"
            assert 0 < d <= 1.5

    def test_exactly_at_gst_is_already_synchronous(self):
        adv = make_gst(gst=50.0, delta=1.0)
        d = adv.message_delay(0, 1, "m", now=50.0)
        assert d is not None and d <= 1.0

    def test_pre_gst_still_chaotic(self):
        adv = make_gst(gst=1000.0, delta=1.0)
        outcomes = [adv.message_delay(0, 1, ("m", i), now=5.0) for i in range(500)]
        assert any(d is None for d in outcomes), "expected pre-GST drops"
        assert any(d is not None and d > 1.0 for d in outcomes)

    def test_no_post_gst_duplicates(self):
        adv = make_gst(gst=50.0, delta=1.0)
        extras = [adv.extra_deliveries(0, 1, ("m", i), now=60.0)
                  for i in range(200)]
        assert all(not e for e in extras)

    def test_chaos_windows_clip_to_gst(self):
        adv = make_gst(gst=50.0)
        text = adv.describe()
        assert "GSTAdversary(" in text
        assert "50.00" in text and "delta=1.0" in text

    def test_active_until_beyond_gst_rejected(self):
        with pytest.raises(ConfigurationError):
            GSTAdversary(n=4, gst=10.0, delta=1.0, active_until=20.0)

    def test_nonpositive_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            GSTAdversary(n=4, gst=10.0, delta=0.0)

    def test_is_a_chaos_adversary(self):
        assert isinstance(make_gst(), ChaosAdversary)


class _Echo(Process):
    def __init__(self):
        super().__init__()
        self.got = []

    def on_message(self, src, msg):
        self.got.append((self.ctx.now, msg))


class TestGSTEndToEnd:
    def test_post_gst_sends_arrive_within_delta(self):
        procs = [_Echo() for _ in range(3)]
        adv = GSTAdversary(n=3, gst=10.0, delta=0.5, drop_probability=0.9)
        sim = Simulation(procs, adv, seed=3)
        for i in range(20):
            sim.at(20.0 + i, lambda i=i: procs[0].ctx.send(1, ("post", i)))
        sim.run(until=60.0)
        got = [t for t, m in procs[1].got if m[0] == "post"]
        assert len(got) == 20  # nothing dropped after GST
        for i, t in enumerate(sorted(got)):
            assert t - (20.0 + i) <= 0.5 + 1e-9
