"""Bounded model checker: DPOR soundness, schedule ids, sharding.

The load-bearing property is that DPOR is *sound reduction*: on systems
small enough to enumerate naively, ``dpor=True`` must reach exactly the
same set of distinguishable outcomes (per-process local views, violation
verdicts) as ``dpor=False`` — while exploring several-fold fewer
schedules. Micro-systems here are two senders fanning out to two
receivers: 24 naive interleavings, 4 Mazurkiewicz classes.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.mc import (
    Explorer,
    Schedule,
    explore,
    merge_results,
    parse_schedule_id,
    replay_schedule,
    root_choice_count,
    schedule_id,
)
from repro.mc.vclock import dependent, join, leq
from repro.sim.adversary import LockStepSynchronous
from repro.sim.process import Process
from repro.sim.runner import Simulation


class FanoutSender(Process):
    """Sends one message to every listed destination on start."""

    def __init__(self, dsts):
        super().__init__()
        self.dsts = dsts

    def on_start(self):
        for dst in self.dsts:
            self.ctx.send(dst, ("ping", None))


class OrderRecorder(Process):
    """Records the arrival order of sources; the only state that matters."""

    def on_message(self, src, msg):
        self.ctx.record("custom", event="got", src=src)


def micro_factory():
    """2 senders × 2 receivers: 4 deliveries, 24 naive orders, 4 classes."""
    procs = [
        FanoutSender((2, 3)),
        FanoutSender((2, 3)),
        OrderRecorder(),
        OrderRecorder(),
    ]
    return Simulation(procs, adversary=LockStepSynchronous(1.0), seed=0)


def arrival_orders(sim):
    """Per-receiver source arrival order — the Mazurkiewicz invariant."""
    orders = {}
    for pid in (2, 3):
        orders[pid] = tuple(
            ev.field("src")
            for ev in sim.trace.events(
                "custom", predicate=lambda e: e.field("event") == "got"
            )
            if ev.pid == pid
        )
    return (orders[2], orders[3])


def order_dependent_check(state):
    """Planted order bug: receiver 2 must not hear p1 before p0."""
    o2, _ = arrival_orders(state)
    if o2 and o2[0] == 1:
        return "receiver 2 heard p1 first"
    return None


class TestDPORSoundness:
    def collect(self, dpor):
        leaves = set()
        res = explore(
            micro_factory,
            on_leaf=lambda state, sched: leaves.add(arrival_orders(state)),
            dpor=dpor,
        )
        return res, leaves

    def test_identical_outcome_classes(self):
        naive_res, naive_leaves = self.collect(dpor=False)
        dpor_res, dpor_leaves = self.collect(dpor=True)
        assert naive_leaves == dpor_leaves
        # 2 orders per receiver, receivers independent
        assert len(naive_leaves) == 4
        assert naive_res.schedules == 24
        assert dpor_res.schedules == 4

    def test_reduction_factor_at_least_five(self):
        naive_res, _ = self.collect(dpor=False)
        dpor_res, _ = self.collect(dpor=True)
        assert dpor_res.reduction_vs(naive_res) >= 5.0
        assert dpor_res.complete and naive_res.complete

    def test_identical_verdicts_on_planted_order_bug(self):
        verdicts = {}
        for dpor in (False, True):
            violating_orders = set()
            res = explore(
                micro_factory,
                check=order_dependent_check,
                on_leaf=lambda state, sched: None,
                dpor=dpor,
            )
            for v in res.violations:
                rr = replay_schedule(micro_factory, v.schedule)
                violating_orders.add(arrival_orders(rr.state))
            verdicts[dpor] = violating_orders
            assert res.violations, "the order bug must be found"
        # same distinguishable counterexample classes from both modes
        assert verdicts[True] == verdicts[False]

    def test_transitions_count_work_done(self):
        res, _ = self.collect(dpor=True)
        assert res.transitions >= res.schedules
        assert res.max_depth == 4


class TestBounds:
    def test_max_schedules_marks_incomplete(self):
        res = explore(micro_factory, dpor=False, max_schedules=3)
        assert res.schedules == 3
        assert not res.complete

    def test_max_steps_truncates_and_terminates(self):
        res = explore(micro_factory, dpor=False, max_steps=2)
        assert res.complete
        assert res.truncated == res.schedules > 0
        assert res.max_depth == 2

    def test_stop_at_first_violation(self):
        res = explore(
            micro_factory,
            check=order_dependent_check,
            dpor=False,
            stop_at_first_violation=True,
        )
        assert len(res.violations) == 1
        assert not res.complete

    def test_focus_bound_dispatches_rest_canonically(self):
        # only receiver 2's deliveries branch: 2 schedules, not 24
        res = explore(micro_factory, dpor=False, choice_targets=(2,))
        assert res.schedules == 2


class TestScheduleIds:
    def test_roundtrip(self):
        sched = Schedule(steps=(3, 17, 12), digest="a91f03c2e4b7")
        assert parse_schedule_id(schedule_id(sched)) == sched

    def test_malformed_ids_raise(self):
        for bad in ("", "mc2:1-2:abc", "mc1:1-x:abc", "mc1:12"):
            with pytest.raises(ConfigurationError):
                parse_schedule_id(bad)

    def test_replay_roundtrip_every_leaf(self):
        schedules = []
        explore(
            micro_factory,
            on_leaf=lambda state, sched: schedules.append(sched),
            dpor=True,
        )
        assert schedules
        for sched in schedules:
            rr = replay_schedule(micro_factory, schedule_id(sched))
            assert rr.steps_applied == sched.depth
            assert rr.violation is None

    def test_replay_digest_mismatch_raises(self):
        schedules = []
        explore(
            micro_factory,
            on_leaf=lambda state, sched: schedules.append(sched),
            dpor=True,
        )
        sched = schedules[0]
        forged = Schedule(steps=sched.steps, digest="0" * 12)
        with pytest.raises(ConfigurationError, match="digest mismatch"):
            replay_schedule(micro_factory, forged)

    def test_replay_rejects_non_enabled_seq(self):
        with pytest.raises(ConfigurationError, match="not co-enabled"):
            replay_schedule(
                micro_factory, Schedule(steps=(99999,), digest="")
            )


class TestSharding:
    def test_root_shards_cover_the_whole_tree(self):
        n_roots = root_choice_count(micro_factory)
        assert n_roots == 4
        leaves = set()
        shard_results = []
        for i in range(n_roots):
            ex = Explorer(
                micro_factory,
                on_leaf=lambda state, sched: leaves.add(
                    arrival_orders(state)
                ),
                dpor=False,
            )
            shard_results.append(
                ex.run(root_choice=i, root_sleep=tuple(range(i)))
            )
        merged = merge_results(shard_results)
        assert merged.schedules == 24  # naive split: no double counting
        _, full_leaves = TestDPORSoundness().collect(dpor=False)
        assert leaves == full_leaves

    def test_root_choice_out_of_range(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            Explorer(micro_factory).run(root_choice=99)


class TestVClock:
    def test_leq_and_join(self):
        a, b = {1: 2, 2: 1}, {1: 1, 2: 3}
        assert not leq(a, b) and not leq(b, a)
        j = join(a, b)
        assert j == {1: 2, 2: 3}
        assert leq(a, j) and leq(b, j)
        assert leq({}, a)

    def test_dependence(self):
        assert dependent(1, 1)
        assert not dependent(1, 2)
        assert dependent(None, 2) and dependent(1, None)
