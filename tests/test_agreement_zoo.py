"""Tests for the agreement zoo: checkers, protocols, impossibility worlds."""

from __future__ import annotations

import pytest

from repro.agreement import (
    STRONG,
    VERY_WEAK,
    WEAK,
    VeryWeakAgreement,
    build_strong_agreement_system,
    build_weak_agreement_system,
    check_agreement,
    run_vwa_rb_impossibility,
)
from repro.broadcast.definitions import BOT
from repro.core.rounds import SharedMemoryRoundTransport
from repro.core.uni_from_sm import build_objects_for
from repro.errors import ConfigurationError, PropertyViolation
from repro.sim import ReliableAsynchronous, Simulation
from repro.sim.trace import Trace


def synthetic(commits, inputs, variant, correct=None, all_correct=True):
    t = Trace()
    for i, (pid, v) in enumerate(commits):
        t.record(float(i), "decide", pid, value=v)
    correct = correct if correct is not None else sorted(inputs)
    return check_agreement(t, variant, inputs, correct, all_correct)


class TestCheckers:
    def test_very_weak_allows_bot(self):
        rep = synthetic([(0, "v"), (1, BOT)], {0: "v", 1: "w"}, VERY_WEAK)
        assert rep.ok

    def test_very_weak_two_values_flagged(self):
        rep = synthetic([(0, "v"), (1, "w")], {0: "v", 1: "w"}, VERY_WEAK)
        assert rep.agreement_violations

    def test_weak_rejects_bot_disagreement(self):
        rep = synthetic([(0, "v"), (1, BOT)], {0: "v", 1: "v"}, WEAK)
        assert rep.agreement_violations

    def test_weak_validity_fires_only_if_all_correct(self):
        rep = synthetic([(0, "x"), (1, "x")], {0: "v", 1: "v"}, WEAK,
                        all_correct=False)
        assert not rep.validity_violations
        rep2 = synthetic([(0, "x"), (1, "x")], {0: "v", 1: "v"}, WEAK,
                         all_correct=True)
        assert rep2.validity_violations

    def test_strong_validity_only_correct_inputs_matter(self):
        rep = synthetic(
            [(0, "v"), (1, "v")],
            {0: "v", 1: "v", 2: "byz-input"},
            STRONG,
            correct=[0, 1],
            all_correct=False,
        )
        assert rep.ok

    def test_termination_violation(self):
        rep = synthetic([(0, "v")], {0: "v", 1: "v"}, WEAK)
        assert rep.termination_violations
        with pytest.raises(PropertyViolation):
            rep.assert_ok()

    def test_only_first_decision_counts(self):
        t = Trace()
        t.record(0.0, "decide", 0, value="a")
        t.record(1.0, "decide", 0, value="b")
        rep = check_agreement(t, WEAK, {0: "a"}, [0], all_correct=True)
        assert rep.commits == {0: "a"}

    def test_unknown_variant(self):
        with pytest.raises(PropertyViolation):
            synthetic([], {0: "v"}, "nonsense")


class TestVeryWeakOverUni:
    def build(self, inputs, seed):
        n = len(inputs)
        procs = [VeryWeakAgreement(SharedMemoryRoundTransport(), inputs[p])
                 for p in range(n)]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 1.0), seed=seed)
        for obj in build_objects_for("append-log", n):
            sim.memory.register(obj)
        return sim

    def test_unanimous_commits_value(self):
        sim = self.build({0: "v", 1: "v", 2: "v"}, seed=1)
        sim.run(until=200.0)
        rep = check_agreement(sim.trace, VERY_WEAK, {p: "v" for p in range(3)},
                              range(3), all_correct=True)
        rep.assert_ok()
        assert all(v == "v" for v in rep.commits.values())

    def test_mixed_inputs_safe(self):
        inputs = {0: 1, 1: 2, 2: 1, 3: 2}
        sim = self.build(inputs, seed=2)
        sim.run(until=200.0)
        rep = check_agreement(sim.trace, VERY_WEAK, inputs, range(4),
                              all_correct=True)
        rep.assert_ok()

    def test_n_greater_f_bound_two_processes(self):
        """n = 2, f = 1 pattern: one process crashes, survivor still commits."""
        inputs = {0: "a", 1: "b"}
        sim = self.build(inputs, seed=3)
        sim.crash_at(1, 0.1)
        sim.run(until=200.0)
        rep = check_agreement(sim.trace, VERY_WEAK, inputs, [0],
                              all_correct=False)
        rep.assert_ok()

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_agreement_across_seeds(self, seed):
        inputs = {0: "x", 1: "y", 2: "x"}
        sim = self.build(inputs, seed=seed)
        sim.run(until=200.0)
        rep = check_agreement(sim.trace, VERY_WEAK, inputs, range(3),
                              all_correct=True)
        rep.assert_ok()


class TestVWAImpossibilityWorlds:
    def test_f2_demonstration(self):
        out = run_vwa_rb_impossibility(f=2, seed=0)
        out.assert_holds()

    def test_f3_demonstration(self):
        out = run_vwa_rb_impossibility(f=3, seed=1)
        out.assert_holds()

    def test_worlds_2_and_4_respect_validity(self):
        out = run_vwa_rb_impossibility(f=2, seed=2)
        assert all(v == 0 for v in out.worlds[2].report.commits.values())
        assert all(v == 1 for v in out.worlds[4].report.commits.values())

    def test_world5_is_the_contradiction(self):
        out = run_vwa_rb_impossibility(f=2, seed=3)
        assert out.worlds[5].report.agreement_violations

    def test_invalid_f(self):
        with pytest.raises(ConfigurationError):
            run_vwa_rb_impossibility(f=0)


class TestWeakAgreement:
    def test_mixed_inputs_agree(self):
        sim, procs = build_weak_agreement_system(f=1, inputs=[1, 2, 3], seed=1)
        sim.run(until=2000.0)
        rep = check_agreement(sim.trace, WEAK, {0: 1, 1: 2, 2: 3}, range(3),
                              all_correct=True)
        rep.assert_ok()

    def test_unanimity_commits_value(self):
        sim, procs = build_weak_agreement_system(f=1, inputs=["v"] * 3, seed=2)
        sim.run(until=2000.0)
        rep = check_agreement(sim.trace, WEAK, {p: "v" for p in range(3)},
                              range(3), all_correct=True)
        rep.assert_ok()
        assert all(v == "v" for v in rep.commits.values())

    def test_crash_failover(self):
        sim, procs = build_weak_agreement_system(
            f=1, inputs=["a", "b", "c"], seed=3, req_timeout=15.0
        )
        sim.crash_at(0, 0.5)
        sim.run(until=4000.0)
        rep = check_agreement(sim.trace, WEAK, {0: "a", 1: "b", 2: "c"},
                              [1, 2], all_correct=False)
        rep.assert_ok()

    def test_input_count_validated(self):
        with pytest.raises(ConfigurationError):
            build_weak_agreement_system(f=1, inputs=["only", "two"])


class TestStrongAgreement:
    def test_strong_validity(self):
        sim, procs = build_strong_agreement_system(5, 2, ["v"] * 5, seed=1)
        sim.run(until=80.0)
        rep = check_agreement(sim.trace, STRONG, {p: "v" for p in range(5)},
                              range(5), all_correct=True)
        rep.assert_ok()
        assert all(v == "v" for v in rep.commits.values())

    def test_byzantine_minority_cannot_break_validity(self):
        sim, procs = build_strong_agreement_system(5, 2, ["v", "v", "v", "x", "y"], seed=2)
        sim.declare_byzantine(3)
        sim.declare_byzantine(4)
        sim.crash(3)
        sim.crash(4)
        sim.run(until=80.0)
        rep = check_agreement(sim.trace, STRONG,
                              {0: "v", 1: "v", 2: "v", 3: "x", 4: "y"},
                              [0, 1, 2], all_correct=False)
        rep.assert_ok()
        assert all(v == "v" for v in rep.commits.values())

    def test_bound_validated(self):
        with pytest.raises(ConfigurationError):
            build_strong_agreement_system(4, 2, [1, 2, 3, 4])

    def test_input_count_validated(self):
        with pytest.raises(ConfigurationError):
            build_strong_agreement_system(4, 1, [1, 2])
