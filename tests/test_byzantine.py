"""Tests for the Byzantine behavior library."""

from __future__ import annotations

from repro.sim import (
    BabblerProcess,
    ByzantineWrapper,
    Process,
    Simulation,
    drop_to,
    equivocate_by_destination,
    mutate_kind,
)
from repro.types import Message


class Collector(Process):
    def __init__(self):
        super().__init__()
        self.got = []

    def on_message(self, src, msg):
        self.got.append((src, msg))


class Announcer(Process):
    """The 'correct protocol' being wrapped: broadcasts one VALUE message."""

    def on_start(self):
        self.ctx.broadcast(("VALUE", "truth"), include_self=False)


class TestStandaloneByzantine:
    def test_silent_sends_nothing(self):
        from repro.sim import SilentProcess

        c = Collector()
        sim = Simulation([SilentProcess(), c], seed=0)
        sim.run_to_quiescence()
        assert c.got == []

    def test_babbler_sends_junk(self):
        c0, c1 = Collector(), Collector()
        sim = Simulation([BabblerProcess(rounds=3, fanout=2), c0, c1], seed=1)
        sim.run(until=100.0)
        junk = c0.got + c1.got
        assert junk and all(m[1][0] == "JUNK" for m in junk)


class TestWrapper:
    def _run(self, filt, n=3, seed=2):
        collectors = [Collector() for _ in range(n - 1)]
        wrapped = ByzantineWrapper(Announcer(), filt)
        sim = Simulation([wrapped, *collectors], seed=seed)
        sim.declare_byzantine(0)
        sim.run_to_quiescence()
        return collectors

    def test_drop_to_selective_silence(self):
        c1, c2 = self._run(drop_to(1))
        assert c1.got == []
        assert c2.got == [(0, ("VALUE", "truth"))]

    def test_mutate_kind(self):
        c1, c2 = self._run(mutate_kind("VALUE", lambda body: ("lie",)))
        assert c1.got == [(0, ("VALUE", "lie"))]
        assert c2.got == [(0, ("VALUE", "lie"))]

    def test_mutate_other_kinds_untouched(self):
        c1, c2 = self._run(mutate_kind("OTHER", lambda body: ("lie",)))
        assert c1.got == [(0, ("VALUE", "truth"))]

    def test_equivocate_by_destination(self):
        filt = equivocate_by_destination(
            "VALUE", lambda dst, body: (f"for-{dst}",)
        )
        c1, c2 = self._run(filt)
        assert c1.got == [(0, ("VALUE", "for-1"))]
        assert c2.got == [(0, ("VALUE", "for-2"))]

    def test_wrapper_forwards_inbound_events(self):
        class EchoInner(Process):
            def on_message(self, src, msg):
                self.ctx.send(src, ("ECHO", msg))

        class Prober(Process):
            def __init__(self):
                super().__init__()
                self.got = []

            def on_start(self):
                self.ctx.send(0, ("PING",))

            def on_message(self, src, msg):
                self.got.append(msg)

        wrapped = ByzantineWrapper(EchoInner(), lambda s, d, m: m)
        prober = Prober()
        sim = Simulation([wrapped, prober], seed=3)
        sim.run_to_quiescence()
        assert prober.got == [("ECHO", ("PING",))]

    def test_message_dataclass_equivocation(self):
        class MsgAnnouncer(Process):
            def on_start(self):
                self.ctx.broadcast(Message("VALUE", "v"), include_self=False)

        filt = equivocate_by_destination("VALUE", lambda dst, body: f"{body}-{dst}")
        collectors = [Collector(), Collector()]
        wrapped = ByzantineWrapper(MsgAnnouncer(), filt)
        sim = Simulation([wrapped, *collectors], seed=4)
        sim.run_to_quiescence()
        assert collectors[0].got == [(0, Message("VALUE", "v-1"))]
        assert collectors[1].got == [(0, Message("VALUE", "v-2"))]
