"""Tests for PBFT checkpointing, garbage collection, and state transfer."""

from __future__ import annotations

import pytest

from repro.consensus import build_pbft_system, check_replication
from repro.consensus.pbft import PBFTReplica, ckpt_domain
from repro.crypto import SignatureScheme
from repro.crypto.serialize import content_hash
from repro.crypto.signatures import Signature


def with_checkpoints(interval):
    def factory(pid, **kwargs):
        return PBFTReplica(checkpoint_interval=interval, **kwargs)
    return factory


class TestCheckpointLifecycle:
    def test_stable_checkpoints_and_gc(self):
        sim, reps, clients = build_pbft_system(
            f=1, n_clients=1, ops_per_client=8, seed=1,
            replica_factory=with_checkpoints(2),
        )
        sim.run(until=5000.0)
        n = len(reps)
        check_replication(sim.trace, range(n), expected_ops={n: 8}).assert_ok()
        for r in reps:
            assert r.stable_seq >= 6
            assert r.log_entries_gced > 0
            assert all(s > r.stable_seq for s in r._prepared_certs)

    def test_disabled_by_default(self):
        sim, reps, clients = build_pbft_system(f=1, n_clients=1,
                                               ops_per_client=3, seed=2)
        sim.run(until=2000.0)
        assert all(r.stable_seq == 0 for r in reps)

    def test_view_change_after_gc(self):
        sim, reps, clients = build_pbft_system(
            f=1, n_clients=1, ops_per_client=10, seed=3,
            replica_factory=with_checkpoints(2),
            req_timeout=20.0, retry_timeout=60.0,
        )
        sim.crash_at(0, 4.0)
        sim.run(until=10000.0)
        n = len(reps)
        rep = check_replication(sim.trace, [1, 2, 3], expected_ops={n: 10})
        rep.assert_ok()
        assert all(r.view >= 1 for r in reps[1:])
        assert any(r.log_entries_gced > 0 for r in reps[1:])

    def test_low_watermark_blocks_stale_preprepares(self):
        """A pre-prepare at or below the stable checkpoint is ignored."""
        sim, reps, clients = build_pbft_system(
            f=1, n_clients=1, ops_per_client=6, seed=4,
            replica_factory=with_checkpoints(2),
        )
        sim.run(until=4000.0)
        r = reps[1]
        assert r.stable_seq >= 2
        before = dict(r._accepted_pp)
        # replay the primary's slot-1 pre-prepare shape with a junk request;
        # even a perfectly signed one would bounce off the watermark first
        r._on_pre_prepare(0, ("PBFT-PRE-PREPARE", 0, 1, "junk", "sig"))
        assert r._accepted_pp == before


class TestCertificateValidation:
    def make_cert(self, scheme, signers, seq, digest, replicas):
        return tuple(
            (r, seq, digest, signers[r].sign(ckpt_domain(seq, digest, r)))
            for r in replicas
        )

    @pytest.fixture
    def env(self):
        scheme = SignatureScheme(4, seed=5)
        signers = [scheme.signer(p) for p in range(4)]
        return scheme, signers

    def test_valid_cert(self, env):
        scheme, signers = env
        cert = self.make_cert(scheme, signers, 2, b"d" * 32, (0, 1, 2))
        assert PBFTReplica._validate_ckpt_cert(scheme, cert, f=1) == (2, b"d" * 32)

    def test_too_few(self, env):
        scheme, signers = env
        cert = self.make_cert(scheme, signers, 2, b"d" * 32, (0, 1))
        assert PBFTReplica._validate_ckpt_cert(scheme, cert, f=1) is None

    def test_mismatched_digest(self, env):
        scheme, signers = env
        cert = self.make_cert(scheme, signers, 2, b"a" * 32, (0, 1)) + \
            self.make_cert(scheme, signers, 2, b"b" * 32, (2,))
        assert PBFTReplica._validate_ckpt_cert(scheme, cert, f=1) is None

    def test_forged_signature(self, env):
        scheme, signers = env
        cert = self.make_cert(scheme, signers, 2, b"d" * 32, (0, 1))
        forged = cert + ((2, 2, b"d" * 32, Signature(signer=2, tag=b"\x00" * 32)),)
        assert PBFTReplica._validate_ckpt_cert(scheme, forged, f=1) is None

    def test_duplicate_replica(self, env):
        scheme, signers = env
        one = self.make_cert(scheme, signers, 2, b"d" * 32, (0,))
        assert PBFTReplica._validate_ckpt_cert(scheme, one * 3, f=1) is None


class TestStateTransfer:
    def test_starved_replica_fast_forwards(self):
        """A replica cut off from all early traffic adopts the NEW-VIEW's
        certified checkpoint state instead of replaying GC'd slots."""
        from repro.sim import ScriptedAdversary
        from repro.sim.adversary import LinkRule

        victim = 3
        adv = ScriptedAdversary(base_delay=0.05)
        # nothing reaches the victim before t=30 (delivered at t>=200) —
        # including client requests, so it cannot replay or even hear ops
        for r in range(5):
            adv.add_rule(LinkRule(
                [r], [victim],
                (lambda s, d, m, now, r=r: (200.0 + 5 * r) - now),
                start=0.0, end=30.0,
            ))

        sim, reps, clients = build_pbft_system(
            f=1, n_clients=1, ops_per_client=8, seed=6,
            adversary=adv, replica_factory=with_checkpoints(2),
            req_timeout=20.0, retry_timeout=45.0,
        )
        sim.crash_at(0, 0.5)
        sim.run(until=30000.0)
        n = len(reps)
        rep = check_replication(sim.trace, [1, 2, victim],
                                expected_ops={n: 8})
        rep.assert_ok()
        transfers = [
            ev for ev in sim.trace.events("custom", pid=victim)
            if ev.field("event") == "state_transfer"
        ]
        assert transfers
        digests = {reps[p].app.digest() for p in (1, 2, victim)}
        assert len(digests) == 1

    def test_certified_checkpoint_triggers_proactive_fetch(self):
        """A replica that misses the three-phase traffic entirely catches
        up through GET-STATE/STATE the moment it assembles a 2f+1
        checkpoint certificate ahead of its execution frontier — no view
        change involved. Without the proactive path this replica wedges:
        its peers are idle once the workload drains, so the view change
        its timer keeps calling for can never complete."""
        from repro.consensus.pbft import CHECKPOINT, STATE
        from repro.sim import ScriptedAdversary
        from repro.sim.adversary import WITHHELD, LinkRule

        victim = 3

        def ckpt_only(src, dst, msg, now):
            if isinstance(msg, tuple) and msg and msg[0] in (CHECKPOINT, STATE):
                return 0.05
            return WITHHELD

        adv = ScriptedAdversary(base_delay=0.05)
        adv.add_rule(LinkRule(range(4), [victim], ckpt_only))

        sim, reps, clients = build_pbft_system(
            f=1, n_clients=1, ops_per_client=8, seed=7,
            adversary=adv, replica_factory=with_checkpoints(2),
        )
        sim.run(until=5000.0)
        n = len(reps)
        check_replication(sim.trace, [0, 1, 2], expected_ops={n: 8}).assert_ok()
        assert all(r.view == 0 for r in reps)  # nobody changed view
        v = reps[victim]
        assert v.state_transfers >= 1
        assert v.exec_next == reps[0].exec_next
        assert v.stable_seq == reps[0].stable_seq
        assert not v._pending  # transferred state settles pending requests
        assert len({r.app.digest() for r in reps}) == 1
