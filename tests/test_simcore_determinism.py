"""Golden determinism: the rewritten scheduler vs. the pre-refactor loop.

The R7 rewrite (keyed-tuple heap + timer wheel + recycled events +
mark-and-skip ``step``) claims *bit-identical* ``(time, seq)`` dispatch
order. These tests drive :class:`repro.sim.scheduler.Scheduler` and the
retained :class:`repro.sim._reference.HeapOnlyScheduler` through the same
randomized command programs and assert the two implementations are
observationally indistinguishable:

- run-mode: identical ``(seq, time)`` dispatch logs, identical
  ``events_processed``/``end_time`` per segment, identical final
  quiescence — under interleaved schedules, ``after``-chains, cancels,
  and partial ``run`` calls (``max_events`` and ``until`` horizons);
- controlled-mode: identical ``co_enabled()`` enumerations at *every*
  round (schedule ids index into this canonical order, so DPOR replay
  determinism rides on it), under adversarial step choices;
- the decided after-cancelled-predecessor semantics (blocked **forever**
  — see the ``co_enabled`` docstring) as an explicit regression pin on
  both implementations.

The drivers follow the owner pattern the free-list imposes: a raw timer
handle is dead once it fires or is cancelled (its slot may be recycled
under a new seq), so liveness is tracked by the seq recorded at schedule
time — a rule that is implementation-independent, since the reference
never recycles.

Cross-implementation stats comparison deliberately excludes
``timer_wheel_hits``/``freelist_reuses`` (the reference has neither
mechanism and reports 0 by design); full ``deterministic_fields()``
reproducibility is asserted new-scheduler-vs-itself instead.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim._reference import HeapOnlyScheduler
from repro.sim.events import TimerFire
from repro.sim.scheduler import Scheduler

FINAL_DRAIN = 1_000_000.0  # past any schedulable time the programs reach

_run_ops = st.lists(
    st.one_of(
        st.tuples(st.just("sched"), st.floats(0.0, 50.0), st.just(0)),
        st.tuples(st.just("after"), st.floats(0.0, 50.0),
                  st.integers(0, 63)),
        st.tuples(st.just("cancel"), st.just(0.0), st.integers(0, 63)),
        st.tuples(st.just("run"), st.just(0.0), st.integers(0, 8)),
        st.tuples(st.just("until"), st.floats(0.0, 100.0), st.just(0)),
    ),
    min_size=1,
    max_size=40,
)


def _interpret_run(sched_cls, ops):
    """Replay one drawn command program in free-running mode.

    Returns the dispatch log and the implementation-independent slice of
    each segment's stats, plus the full deterministic_fields tuples (for
    same-implementation reproducibility checks only).
    """
    s = sched_cls()
    log: list = []
    gone: set = set()  # seqs fired or cancelled — handles no longer owned

    def dispatch(ev):
        log.append((ev.seq, ev.time))
        gone.add(ev.seq)

    s.dispatch = dispatch
    handles: list = []  # (seq-at-schedule-time, event)
    segments = []
    full_stats = []
    for kind, delay, idx in ops:
        if kind == "sched" or kind == "after":
            after = None
            if kind == "after" and handles:
                seq, ev0 = handles[idx % len(handles)]
                if seq not in gone:  # owner pattern: dead handles are poison
                    after = ev0
            ev = s.schedule(
                delay, TimerFire(pid=0, tag="t", timer_id=len(handles)),
                after=after,
            )
            handles.append((ev.seq, ev))
        elif kind == "cancel":
            if handles:
                seq, ev0 = handles[idx % len(handles)]
                if seq not in gone:
                    s.cancel(ev0)
                    gone.add(seq)
        elif kind == "run":
            stats = s.run(max_events=idx)
            segments.append((stats.events_processed, stats.end_time))
            full_stats.append(stats.deterministic_fields())
        else:  # until
            stats = s.run(until=s.now + delay)
            segments.append((stats.events_processed, stats.end_time))
            full_stats.append(stats.deterministic_fields())
    final = s.run(until=FINAL_DRAIN)
    segments.append(
        (final.events_processed, final.end_time, final.exhausted)
    )
    full_stats.append(final.deterministic_fields())
    return log, segments, full_stats


class TestRunModeGoldenDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(ops=_run_ops)
    def test_matches_pre_refactor_loop(self, ops):
        new_log, new_segs, new_full = _interpret_run(Scheduler, ops)
        ref_log, ref_segs, _ = _interpret_run(HeapOnlyScheduler, ops)
        assert new_log == ref_log, "dispatch order diverged"
        assert new_segs == ref_segs, "per-segment stats diverged"
        # same seed, same implementation => every counter reproduces,
        # wheel hits and free-list reuses included
        again_log, _, again_full = _interpret_run(Scheduler, ops)
        assert again_log == new_log
        assert again_full == new_full


_controlled_setup = st.lists(
    st.one_of(
        st.tuples(st.just("sched"), st.floats(0.0, 50.0), st.just(0)),
        st.tuples(st.just("after"), st.floats(0.0, 50.0),
                  st.integers(0, 63)),
        st.tuples(st.just("cancel"), st.just(0.0), st.integers(0, 63)),
    ),
    min_size=1,
    max_size=24,
)


def _interpret_controlled(sched_cls, setup, choices):
    """Build a pending set, then step it with an adversarial choice tape.

    Records the full ``co_enabled`` enumeration at every round — the
    canonical order schedule ids index into — alongside the dispatch log.
    """
    s = sched_cls()
    s.controlled = True
    log: list = []
    s.dispatch = lambda ev: log.append((ev.seq, ev.time))
    handles: list = []
    for kind, delay, idx in setup:
        if kind == "cancel":
            if handles:
                tgt = handles[idx % len(handles)]
                if not tgt.cancelled:
                    s.cancel(tgt)
        else:
            after = None
            if kind == "after" and handles:
                after = handles[idx % len(handles)]
            handles.append(
                s.schedule(
                    delay, TimerFire(pid=0, tag="c", timer_id=len(handles)),
                    after=after,
                )
            )
    rounds = []
    i = 0
    while True:
        enabled = s.co_enabled()
        rounds.append([ev.seq for ev in enabled])
        if not enabled:
            break
        s.step(enabled[choices[i % len(choices)] % len(enabled)])
        i += 1
    return log, rounds


class TestControlledModeGoldenDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(
        setup=_controlled_setup,
        choices=st.lists(st.integers(0, 1_000), min_size=1, max_size=24),
    )
    def test_matches_pre_refactor_loop(self, setup, choices):
        new_log, new_rounds = _interpret_controlled(Scheduler, setup, choices)
        ref_log, ref_rounds = _interpret_controlled(
            HeapOnlyScheduler, setup, choices
        )
        assert new_rounds == ref_rounds, (
            "co_enabled enumeration diverged — DPOR schedule ids would "
            "replay differently"
        )
        assert new_log == ref_log, "controlled dispatch order diverged"


class TestCancelledPredecessorBlocksForever:
    """Regression pin for the decided ``after``-chain semantics.

    Cancelling a predecessor before it fires blocks its successors
    *forever*: the chain models a producer's ordering guarantee, and a
    schedule where the predecessor can no longer happen has no valid
    position for the successor (see the ``co_enabled`` docstring). Both
    implementations must agree, or model-checking results would change
    across the refactor.
    """

    def _pin(self, sched_cls):
        s = sched_cls()
        s.controlled = True
        fired: list = []
        s.dispatch = lambda ev: fired.append(ev.seq)
        a = s.schedule(1.0, TimerFire(pid=0, tag="a", timer_id=0))
        b = s.schedule(2.0, TimerFire(pid=0, tag="b", timer_id=1), after=a)
        c = s.schedule(3.0, TimerFire(pid=0, tag="c", timer_id=2))
        # before the cancel, b is blocked (a not fired) but a and c enabled
        assert [ev.seq for ev in s.co_enabled()] == [a.seq, c.seq]
        s.cancel(a)
        # a gone, b blocked forever — only c remains choosable
        assert [ev.seq for ev in s.co_enabled()] == [c.seq]
        s.step(c)
        # b never unblocks, even once everything else has fired
        assert s.co_enabled() == []
        assert fired == [c.seq]
        return b

    def test_production_scheduler(self):
        b = self._pin(Scheduler)
        assert b.queued and not b.fired  # parked, not leaked into dispatch

    def test_pre_refactor_scheduler(self):
        b = self._pin(HeapOnlyScheduler)
        assert b.queued and not b.fired

    def test_firing_predecessor_unblocks(self):
        # the complementary direction: a *fired* predecessor releases the
        # successor into the choice set on both implementations
        for cls in (Scheduler, HeapOnlyScheduler):
            s = cls()
            s.controlled = True
            s.dispatch = lambda ev: None
            a = s.schedule(1.0, TimerFire(pid=0, tag="a", timer_id=0))
            b = s.schedule(2.0, TimerFire(pid=0, tag="b", timer_id=1),
                           after=a)
            assert [ev.seq for ev in s.co_enabled()] == [a.seq]
            s.step(a)
            assert [ev.seq for ev in s.co_enabled()] == [b.seq]
