"""Tests for the overload soak harness: the planted metastable retry
storm, the answer-contract auditor, and the two experiment arms."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError, PropertyViolation
from repro.faults.chaos import chaos_sweep, make_schedule, run_chaos
from repro.service.soak import (
    PlantedBurstGST,
    ServiceLivenessAuditor,
    protected_profile,
    storm_adversary,
    unprotected_profile,
)
from repro.sim.trace import TraceEvent

QUICK_SEEDS = (0, 1)


# ---------------------------------------------------------------------------
# The planted trigger
# ---------------------------------------------------------------------------


class TestPlantedBurstGST:
    def _quiet(self, gst, **kw):
        return PlantedBurstGST(
            n=8, gst=gst, drop_probability=0.0, dup_probability=0.0,
            straggler_probability=0.0, n_bursts=0, n_partitions=0, **kw,
        )

    def test_burst_placed_relative_to_gst(self):
        adv = self._quiet(100.0, burst_len=28.0, burst_gap=2.0)
        assert adv.planted.start == pytest.approx(70.0)
        assert adv.planted.end == pytest.approx(98.0)
        assert adv.planted.drop == 1.0
        assert adv.planted in adv.bursts

    def test_burst_clamped_at_time_zero(self):
        adv = self._quiet(10.0, burst_len=28.0, burst_gap=2.0)
        assert adv.planted.start == 0.0
        assert adv.planted.end == pytest.approx(8.0)

    def test_burst_survives_bind(self):
        # windows regenerate at bind(); a burst appended after construction
        # would be erased — the planted one must persist
        adv = self._quiet(100.0)
        adv.bind(random.Random(7))
        assert adv.planted in adv.bursts

    def test_storm_adversary_is_quiet_except_the_trigger(self):
        adv = storm_adversary(36, gst=120.0, delta=1.0)
        adv.bind(random.Random(3))
        assert adv.bursts == (adv.planted,)
        assert adv.partitions == ()
        assert adv.drop_probability == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._quiet(100.0, burst_len=0.0)
        with pytest.raises(ConfigurationError):
            self._quiet(100.0, burst_gap=-1.0)
        with pytest.raises(ConfigurationError):
            # gst - gap leaves an empty window
            self._quiet(2.0, burst_len=5.0, burst_gap=2.0)


# ---------------------------------------------------------------------------
# Answer-contract auditor
# ---------------------------------------------------------------------------


def _ev(index, time, pid, **fields):
    return TraceEvent(index=index, time=time, kind="custom", pid=pid,
                      fields=fields)


class TestServiceLivenessAuditor:
    def _auditor(self, **kw):
        kw.setdefault("gst", 10.0)
        kw.setdefault("bound", 50.0)
        kw.setdefault("tenants", [5, 6])
        kw.setdefault("ingress", 4)
        return ServiceLivenessAuditor(**kw)

    def test_completion_satisfies(self):
        aud = self._auditor()
        aud.on_event(_ev(0, 0.0, 5, event="svc_sent", req_id=1))
        aud.on_event(_ev(1, 30.0, 5, event="svc_done", req_id=1))
        report = aud.finish(end_time=600.0)
        assert report.ok
        assert (report.obligations_armed, report.obligations_satisfied) == (1, 1)

    def test_typed_rejection_is_an_answer(self):
        # graceful degradation: a reject recorded AT THE INGRESS discharges
        # the tenant's obligation
        aud = self._auditor()
        aud.on_event(_ev(0, 20.0, 6, event="svc_sent", req_id=3))
        aud.on_event(_ev(1, 21.0, 4, event="svc_reject", tenant=6, req_id=3,
                         reason="queue_full"))
        assert aud.finish(end_time=600.0).ok
        assert aud.satisfied == 1

    def test_budgeted_abandonment_is_an_answer(self):
        aud = self._auditor()
        aud.on_event(_ev(0, 20.0, 5, event="svc_sent", req_id=2))
        aud.on_event(_ev(1, 40.0, 5, event="svc_failed", req_id=2))
        assert aud.finish(end_time=600.0).ok

    def test_limbo_past_the_bound_is_convicted(self):
        # sent pre-GST: deadline is gst + bound, and expiry is detected as
        # the clock passes it mid-stream
        aud = self._auditor()
        aud.on_event(_ev(0, 0.0, 5, event="svc_sent", req_id=1))
        aud.on_event(_ev(1, 61.0, 6, event="svc_sent", req_id=9))
        assert len(aud.online_violations) == 1
        report = aud.finish(end_time=600.0)
        assert not report.ok
        assert "tenant 5" in report.violations[0]

    def test_fail_fast_raises_at_expiry(self):
        aud = self._auditor(fail_fast=True)
        aud.on_event(_ev(0, 0.0, 5, event="svc_sent", req_id=1))
        with pytest.raises(PropertyViolation):
            aud.on_event(_ev(1, 61.0, 6, event="svc_sent", req_id=9))

    def test_run_ending_before_deadline_is_unresolved_not_violated(self):
        aud = self._auditor()
        aud.on_event(_ev(0, 55.0, 5, event="svc_sent", req_id=1))
        report = aud.finish(end_time=60.0)  # deadline is 105
        assert report.ok
        assert len(report.unresolved) == 1

    def test_foreign_pids_ignored(self):
        aud = self._auditor()
        aud.on_event(_ev(0, 0.0, 99, event="svc_sent", req_id=1))
        aud.on_event(_ev(1, 1.0, 5, event="svc_reject", tenant=5, req_id=1))
        assert (aud.armed, aud.satisfied) == (0, 0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._auditor(bound=0.0)


# ---------------------------------------------------------------------------
# Profiles
# ---------------------------------------------------------------------------


class TestProfiles:
    def test_protected_enables_every_policy(self):
        ingress = protected_profile().make_ingress(range(3))
        assert ingress.queue.maxlen is not None
        assert ingress.bucket is not None
        assert ingress.fair is not None
        assert ingress.codel is not None
        assert ingress.brownout is not None

    def test_unprotected_disables_every_policy(self):
        ingress = unprotected_profile().make_ingress(range(3))
        assert ingress.queue.maxlen is None
        assert ingress.bucket is None
        assert ingress.fair is None
        assert ingress.codel is None
        assert ingress.brownout is None

    def test_tenant_policy_factories_yield_fresh_instances(self):
        kwargs = protected_profile().tenant_kwargs()
        assert kwargs["timeout_policy"]() is not kwargs["timeout_policy"]()
        assert kwargs["retry_budget"]() is not kwargs["retry_budget"]()
        assert kwargs["honor_backpressure"]

    def test_unprotected_tenants_have_no_budget(self):
        kwargs = unprotected_profile().tenant_kwargs()
        assert "retry_budget" not in kwargs
        assert not kwargs["honor_backpressure"]

    def test_overrides(self):
        assert protected_profile(queue_limit=7).queue_limit == 7
        assert unprotected_profile().name == "unprotected"


# ---------------------------------------------------------------------------
# The storm fixture: both arms, every quick seed
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def storm_results():
    return {
        (seed, prot): run_chaos("service-storm", seed=seed, protected=prot)
        for seed in QUICK_SEEDS
        for prot in (True, False)
    }


class TestStormFixture:
    def test_protected_arm_recovers_on_every_quick_seed(self, storm_results):
        for seed in QUICK_SEEDS:
            r = storm_results[(seed, True)]
            assert r.ok, (seed, r.violations, r.liveness_violations)
            assert r.protocol == "service-storm"
            assert "arm=protected" in r.schedule

    def test_unprotected_arm_convicted_on_every_quick_seed(self, storm_results):
        for seed in QUICK_SEEDS:
            r = storm_results[(seed, False)]
            assert not r.ok, seed
            # the collapse is a LIVENESS failure; consensus safety holds
            # even mid-storm
            assert r.liveness_violations, seed
            assert not r.violations, (seed, r.violations)
            assert "reached no terminal outcome" in r.liveness_violations[0]

    def test_collapse_halves_goodput(self, storm_results):
        for seed in QUICK_SEEDS:
            done_p = storm_results[(seed, True)].stats["service"]["completed"]
            done_u = storm_results[(seed, False)].stats["service"]["completed"]
            assert done_p > 1.8 * done_u, (seed, done_p, done_u)

    def test_service_stats_exported(self, storm_results):
        svc = storm_results[(QUICK_SEEDS[0], True)].stats["service"]
        for key in ("completed", "admitted", "dispatched"):
            assert key in svc

    def test_bit_identical_replay(self, storm_results):
        again = run_chaos("service-storm", seed=QUICK_SEEDS[0], protected=True)
        first = storm_results[(QUICK_SEEDS[0], True)]
        assert again.ok == first.ok
        assert again.stats == first.stats
        assert again.schedule == first.schedule


# ---------------------------------------------------------------------------
# Generic composed chaos against the protected service
# ---------------------------------------------------------------------------


class TestGenericServiceChaos:
    def test_composed_faults_do_not_break_the_answer_contract(self):
        for seed in (3, 4):
            r = run_chaos("service", seed=seed)
            assert r.ok, (seed, r.violations, r.liveness_violations)
            assert r.protocol == "service"

    def test_sweep_serial_parallel_bit_identity(self):
        serial = chaos_sweep(["service"], seeds=range(2))
        parallel = chaos_sweep(["service"], seeds=range(2), workers=2)
        assert [r.stats for r in serial] == [r.stats for r in parallel]
        assert [r.ok for r in serial] == [r.ok for r in parallel]
