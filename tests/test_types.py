"""Tests for shared types: Resilience bounds, process sets, partitions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.types import ProcessSet, Resilience, validate_partition


class TestResilience:
    def test_quorums_at_3f_plus_1(self):
        r = Resilience(n=4, f=1)
        assert r.quorum_bft == 3
        assert r.quorum_majority == 2

    def test_quorum_bft_7(self):
        assert Resilience(n=7, f=2).quorum_bft == 5

    @pytest.mark.parametrize(
        "n,f,bound,expected",
        [
            (3, 1, "n>=2f+1", True),
            (2, 1, "n>=2f+1", False),
            (4, 1, "n>=3f+1", True),
            (3, 1, "n>=3f+1", False),
            (2, 1, "n>f", True),
            (4, 2, "n>2f", False),
            (5, 2, "n>2f", True),
            (3, 1, "f=1", True),
            (5, 2, "f=1", False),
        ],
    )
    def test_bounds(self, n, f, bound, expected):
        assert Resilience(n, f).satisfies(bound) is expected

    def test_unknown_bound(self):
        with pytest.raises(ConfigurationError):
            Resilience(3, 1).satisfies("n>=42f")

    @pytest.mark.parametrize("n,f", [(0, 0), (3, -1), (3, 3), (2, 5)])
    def test_invalid_configs(self, n, f):
        with pytest.raises(ConfigurationError):
            Resilience(n, f)

    @given(st.integers(1, 50), st.integers(0, 49))
    def test_quorum_bft_intersects_in_correct(self, n, f):
        """Two BFT quorums overlap in at least f+1 processes (so ≥1 correct)."""
        if f >= n or n <= 3 * f:
            return
        q = Resilience(n, f).quorum_bft
        assert 2 * q - n >= f + 1


class TestProcessSets:
    def test_membership_and_iteration(self):
        ps = ProcessSet("Q", (1, 2, 3))
        assert 2 in ps and 0 not in ps
        assert list(ps) == [1, 2, 3]
        assert len(ps) == 3

    def test_valid_partition(self):
        validate_partition(4, [ProcessSet("A", (0, 1)), ProcessSet("B", (2, 3))])

    def test_partition_missing_pid(self):
        with pytest.raises(ConfigurationError, match="does not cover"):
            validate_partition(4, [ProcessSet("A", (0, 1)), ProcessSet("B", (2,))])

    def test_partition_duplicate_pid(self):
        with pytest.raises(ConfigurationError, match="more than one"):
            validate_partition(3, [ProcessSet("A", (0, 1)), ProcessSet("B", (1, 2))])

    def test_partition_out_of_range(self):
        with pytest.raises(ConfigurationError, match="out-of-range"):
            validate_partition(2, [ProcessSet("A", (0, 5))])
