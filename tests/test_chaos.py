"""Tests for the seeded chaos harness (repro.faults.chaos)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, PropertyViolation
from repro.faults.chaos import (
    assert_all_ok,
    chaos_sweep,
    format_failures,
    make_schedule,
    replay,
    run_chaos,
)

SEEDS = range(11)  # 11 seeds x 2 protocols = 22 seeded fault schedules


class TestProtocolsSurviveChaos:
    def test_srb_and_minbft_zero_violations_across_sweep(self):
        results = chaos_sweep(
            protocols=("srb-uni", "minbft"), seeds=SEEDS
        )
        assert len(results) == 2 * len(SEEDS)
        assert_all_ok(results)
        # the sweep must actually inject faults, not vacuously pass
        assert sum(r.stats["dropped"] for r in results) > 0
        assert sum(r.stats["duplicates"] for r in results) > 0
        assert sum(r.stats["restarts"] for r in results) > 0
        # and the protocols must actually make progress in every run
        assert all(r.stats["deliveries"] > 0 for r in results
                   if r.protocol == "srb-uni")
        assert all(r.stats["executions"] > 0 for r in results
                   if r.protocol == "minbft")


class TestBrokenProtocolDetection:
    def test_broken_fixture_fails_and_reproduces_by_seed(self):
        results = [run_chaos("srb-uni-broken", s) for s in range(20)]
        failing = [r for r in results if not r.ok]
        assert failing, "EagerBrokenSRB never violated safety in 20 schedules"
        # every reported seed reproduces the identical violations
        for r in failing[:3]:
            again = replay(r.protocol, r.seed)
            assert not again.ok
            assert again.violations == r.violations
            assert again.schedule == r.schedule

    def test_violations_are_sequencing(self):
        results = [run_chaos("srb-uni-broken", s) for s in range(20)]
        bad = next(r for r in results if not r.ok)
        assert any("sequencing" in v for v in bad.violations)

    def test_failure_report_names_seed_and_replay(self):
        results = [run_chaos("srb-uni-broken", s) for s in range(20)]
        text = format_failures(results)
        bad = next(r for r in results if not r.ok)
        assert f"seed={bad.seed}" in text
        assert "replay with" in text
        assert "GSTAdversary" in text  # the generated schedule is shown

    def test_assert_all_ok_raises_with_details(self):
        results = [run_chaos("srb-uni-broken", s) for s in range(20)]
        with pytest.raises(PropertyViolation, match="chaos"):
            assert_all_ok(results)


class TestScheduleDerivation:
    def test_schedule_is_pure_function_of_seed(self):
        a = make_schedule(7, crashable=[1, 2, 3])
        b = make_schedule(7, crashable=[1, 2, 3])
        assert a == b

    def test_different_seeds_differ(self):
        assert make_schedule(1, crashable=[1]) != make_schedule(2, crashable=[1])

    def test_describe_covers_crashes(self):
        found_crash = False
        for seed in range(10):
            s = make_schedule(seed, crashable=[1, 2])
            text = s.describe()
            assert f"seed={seed}" in text
            if s.crashes:
                found_crash = True
                assert "crash pid" in text
                for c in s.crashes:
                    assert c.pid in (1, 2)
        assert found_crash

    def test_at_most_one_process_down_at_a_time(self):
        for seed in range(50):
            s = make_schedule(seed, crashable=[0, 1, 2])
            downs = [
                (c.at, c.restart_at if c.restart_at is not None else s.horizon)
                for c in s.crashes
            ]
            downs.sort()
            for (_, end1), (start2, _) in zip(downs, downs[1:]):
                assert end1 <= start2

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos protocol"):
            run_chaos("nope", 0)
