"""Regression tests: verdict memos must not be poisonable by look-alikes.

``canonical_bytes`` deliberately erases type distinctions — tuples and
lists encode identically, a dataclass encoding commits only to
``__qualname__`` and field values — while the uncached validators reject
on ``isinstance``. A verdict memo keyed on the serialization alone would
let a Byzantine peer submit a list-shaped (or impostor-dataclass) copy of
a valid proof first, caching the rejection under the same key as the
genuine value, so the genuine proof would be rejected by every later check
on that scheme; the reverse order would get forged shapes accepted. Memo
keys now pair the canonical bytes with
:func:`repro.crypto.serialize.type_fingerprint`; these tests pin the
end-to-end behavior in both submission orders at every memo site.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

import pytest

from repro.consensus.apps import make_app
from repro.consensus.minbft import MinBFTReplica, REQUEST, request_domain
from repro.consensus.usig import UI, USIG, USIGVerifier
from repro.core.srb_from_uni import (
    copy_domain,
    l1_domain,
    val_domain,
    validate_l1_item,
    validate_l2,
)
from repro.crypto.serialize import (
    caching_disabled,
    canonical_bytes,
    reset_crypto_caches,
    type_fingerprint,
)
from repro.crypto.signatures import SignatureScheme
from repro.hardware.trinc import TrincAuthority


@pytest.fixture(autouse=True)
def _cold_caches():
    reset_crypto_caches()
    yield
    reset_crypto_caches()


# -- Algorithm-1 proof validators ---------------------------------------------------

SENDER, K, M, T = 0, 1, "payload", 1


def make_scheme() -> tuple[SignatureScheme, list]:
    scheme = SignatureScheme(4, seed=7)
    return scheme, [scheme.signer(i) for i in range(4)]


def build_l1(scheme, signers, builder, copiers) -> tuple:
    copies = tuple(
        (j, signers[j].sign(copy_domain(SENDER, K, M))) for j in copiers
    )
    return (builder, copies, signers[builder].sign(l1_domain(SENDER, K, M)))


def build_l2(scheme, signers) -> tuple:
    sig_s = signers[SENDER].sign(val_domain(SENDER, K, M))
    l1items = tuple(build_l1(scheme, signers, b, (1, 2)) for b in (1, 2))
    return ("L2", K, M, sig_s, l1items)


class TestL1ProofMemo:
    def test_list_shape_serializes_identically(self):
        scheme, signers = make_scheme()
        item = build_l1(scheme, signers, 1, (1, 2))
        assert canonical_bytes(list(item)) == canonical_bytes(item)

    def test_list_shaped_item_does_not_poison_genuine(self):
        scheme, signers = make_scheme()
        item = build_l1(scheme, signers, 1, (1, 2))
        assert validate_l1_item(scheme, SENDER, K, M, list(item), T) is None
        assert validate_l1_item(scheme, SENDER, K, M, item, T) == 1

    def test_genuine_verdict_does_not_leak_to_list_shape(self):
        scheme, signers = make_scheme()
        item = build_l1(scheme, signers, 1, (1, 2))
        assert validate_l1_item(scheme, SENDER, K, M, item, T) == 1
        assert validate_l1_item(scheme, SENDER, K, M, list(item), T) is None

    def test_inner_list_copies_not_accepted_after_genuine(self):
        scheme, signers = make_scheme()
        builder, copies, sig = build_l1(scheme, signers, 1, (1, 2))
        item = (builder, copies, sig)
        assert validate_l1_item(scheme, SENDER, K, M, item, T) == 1
        assert (
            validate_l1_item(scheme, SENDER, K, M, (builder, list(copies), sig), T)
            is None
        )

    def test_cached_verdicts_match_uncached(self):
        scheme, signers = make_scheme()
        item = build_l1(scheme, signers, 1, (1, 2))
        shapes = [item, list(item), (item[0], list(item[1]), item[2])]
        with caching_disabled():
            reference = [
                validate_l1_item(scheme, SENDER, K, M, s, T) for s in shapes
            ]
        for order in (shapes, list(reversed(shapes))):
            fresh, _ = make_scheme()
            got = {id(s): validate_l1_item(fresh, SENDER, K, M, s, T) for s in order}
            assert [got[id(s)] for s in shapes] == reference


class TestL2ProofMemo:
    def test_list_shaped_l1items_do_not_poison_genuine(self):
        scheme, signers = make_scheme()
        payload = build_l2(scheme, signers)
        listy = payload[:4] + (list(payload[4]),)
        assert canonical_bytes(listy) == canonical_bytes(payload)
        assert validate_l2(scheme, SENDER, listy, T) is None
        assert validate_l2(scheme, SENDER, payload, T) == (K, M)

    def test_genuine_verdict_does_not_leak_to_list_shape(self):
        scheme, signers = make_scheme()
        payload = build_l2(scheme, signers)
        listy = payload[:4] + (list(payload[4]),)
        assert validate_l2(scheme, SENDER, payload, T) == (K, M)
        assert validate_l2(scheme, SENDER, listy, T) is None


# -- USIG verified-UI memo ----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class _ImpostorUI:
    """Byzantine look-alike: same qualname + fields as UI, different class."""

    replica: int
    counter: int
    attestation: Any


_ImpostorUI.__qualname__ = "UI"


class TestUSIGMemo:
    def _parts(self):
        auth = TrincAuthority(2, seed=3)
        return USIG(auth.trinket(0)), USIGVerifier(auth)

    def test_impostor_serializes_identically(self):
        usig, _ = self._parts()
        ui = usig.create_ui("m1")
        fake = _ImpostorUI(ui.replica, ui.counter, ui.attestation)
        assert canonical_bytes((fake, "m1", 0)) == canonical_bytes((ui, "m1", 0))

    def test_impostor_does_not_poison_genuine(self):
        usig, verifier = self._parts()
        ui = usig.create_ui("m1")
        fake = _ImpostorUI(ui.replica, ui.counter, ui.attestation)
        assert verifier.verify_ui(fake, "m1", 0) is False
        assert verifier.verify_ui(ui, "m1", 0) is True

    def test_genuine_verdict_does_not_leak_to_impostor(self):
        usig, verifier = self._parts()
        ui = usig.create_ui("m1")
        fake = _ImpostorUI(ui.replica, ui.counter, ui.attestation)
        assert verifier.verify_ui(ui, "m1", 0) is True
        assert verifier.verify_ui(fake, "m1", 0) is False

    def test_impostor_attestation_rejected_after_genuine(self):
        @dataclass(frozen=True, slots=True)
        class _ImpostorAttestation:
            trinket_id: int
            counter_id: int
            prev: int
            seq: int
            message: Any
            tag: bytes

        _ImpostorAttestation.__qualname__ = "Attestation"
        usig, verifier = self._parts()
        ui = usig.create_ui("m1")
        a = ui.attestation
        fake_att = _ImpostorAttestation(
            a.trinket_id, a.counter_id, a.prev, a.seq, a.message, a.tag
        )
        fake = UI(replica=ui.replica, counter=ui.counter, attestation=fake_att)
        assert canonical_bytes(fake) == canonical_bytes(ui)
        assert verifier.verify_ui(ui, "m1", 0) is True
        assert verifier.verify_ui(fake, "m1", 0) is False


# -- MinBFT proposal-validity memo --------------------------------------------------


class TestMinBFTProposalMemo:
    def _replica_and_request(self):
        auth = TrincAuthority(3, seed=1)
        scheme = SignatureScheme(4, seed=1)  # replicas 0..2, client 3
        replica = MinBFTReplica(
            3,
            USIG(auth.trinket(0)),
            USIGVerifier(auth),
            scheme,
            scheme.signer(0),
            make_app("counter"),
        )
        op = ("add", 1)
        sig = scheme.signer(3).sign(request_domain(3, 1, op))
        return replica, (REQUEST, 3, 1, op, sig)

    def test_list_shaped_proposal_does_not_block_genuine(self):
        replica, request = self._replica_and_request()
        assert canonical_bytes(list(request)) == canonical_bytes(request)
        # a Byzantine primary prepares the list-shaped copy first; the
        # genuine tuple proposal (e.g. a post-view-change re-proposal) must
        # still validate, or the slot is stuck system-wide
        assert replica._valid_proposal(list(request)) is False
        assert replica._valid_proposal(request) is True

    def test_genuine_verdict_does_not_leak_to_list_shape(self):
        replica, request = self._replica_and_request()
        assert replica._valid_proposal(request) is True
        assert replica._valid_proposal(list(request)) is False


# -- the fingerprint itself ---------------------------------------------------------


class TestTypeFingerprint:
    def test_distinguishes_tuple_from_list(self):
        assert canonical_bytes((1, 2)) == canonical_bytes([1, 2])
        assert type_fingerprint((1, 2)) != type_fingerprint([1, 2])

    def test_distinguishes_nested_shapes(self):
        assert type_fingerprint(((1,), "x")) != type_fingerprint(([1], "x"))

    def test_distinguishes_impostor_dataclass(self):
        usig = USIG(TrincAuthority(1, seed=0).trinket(0))
        ui = usig.create_ui("m")
        fake = _ImpostorUI(ui.replica, ui.counter, ui.attestation)
        assert type_fingerprint(ui) != type_fingerprint(fake)

    def test_distinguishes_bytes_from_bytearray(self):
        assert canonical_bytes((b"ab",)) == canonical_bytes((bytearray(b"ab"),))
        assert type_fingerprint((b"ab",)) != type_fingerprint((bytearray(b"ab"),))

    def test_equal_values_equal_fingerprints(self):
        a = (1, "x", (2.5, b"y"), frozenset({1, 2}))
        b = (1, "x", (2.5, b"y"), frozenset({2, 1}))
        assert type_fingerprint(a) == type_fingerprint(b)

    def test_cached_identical_to_uncached(self):
        value = (1, "x" * 100, (b"abc" * 40, 2.5), frozenset({1, 2}), {"k": (3,)})
        with caching_disabled():
            reference = type_fingerprint(value)
        warm_miss = type_fingerprint(value)
        warm_hit = type_fingerprint(value)
        assert warm_miss == reference
        assert warm_hit == reference
