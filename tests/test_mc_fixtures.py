"""Planted-bug fixtures and the exhaustive (model-checked) arguments.

The detection-power headline lives here: ``srb-echo-gap`` is clean under
every sampled delay schedule (200 seeds) yet convicted by exhaustive
logical-order exploration — the difference between testing schedules you
can draw and quantifying over all of them. The exhaustive separation and
five-world runners then discharge the paper's "for every execution"
obligations over the full DPOR-reduced schedule space at their bounds.
"""

from __future__ import annotations

import pytest

from repro.agreement.worlds import run_vwa_rb_impossibility_exhaustive
from repro.core.separations import run_srb_separation_exhaustive
from repro.errors import ConfigurationError
from repro.faults.chaos import chaos_sweep, exhaustive_sweep
from repro.mc import Explorer, parse_schedule_id, replay_schedule
from repro.mc.fixtures import SYSTEMS, get_system, sampled_verdicts


class TestPlantedFixtures:
    @pytest.mark.parametrize("name", sorted(SYSTEMS))
    def test_fixture_convicted_with_replayable_counterexample(self, name):
        s = get_system(name)
        res = Explorer(s.factory, check=s.check, **s.options).run()
        assert res.complete
        assert bool(res.violations) == s.expect_violation
        for v in res.violations[:2]:
            parsed = parse_schedule_id(v.schedule)  # well-formed id
            assert v.depth >= parsed.depth
            rr = replay_schedule(
                s.factory, v.schedule, check=s.check, **s.options
            )
            assert rr.violation, (
                f"{name}: counterexample {v.schedule} did not reproduce"
            )

    def test_get_system_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            get_system("no-such-system")


class TestDetectionPower:
    def test_echo_gap_invisible_to_200_seeded_runs(self):
        verdicts = sampled_verdicts(seeds=range(200))
        assert len(verdicts) == 200
        assert all(verdicts), (
            "the echo-gap bug must be geometrically unreachable under "
            "sampled delays — if a seed caught it, the fixture is mistuned"
        )

    def test_echo_gap_convicted_exhaustively(self):
        s = get_system("srb-echo-gap")
        res = Explorer(s.factory, check=s.check, **s.options).run()
        assert res.violations
        assert "sequencing" in res.violations[0].message


class TestExhaustiveSweep:
    def test_serial_and_parallel_shards_agree(self):
        serial = exhaustive_sweep(workers=1)
        parallel = exhaustive_sweep(workers=2)
        assert sorted(serial) == sorted(SYSTEMS)
        for name in serial:
            a, b = serial[name], parallel[name]
            assert a.schedules == b.schedules
            assert {v.schedule for v in a.violations} == {
                v.schedule for v in b.violations
            }
            expected = get_system(name).expect_violation
            assert bool(a.violations) == expected, (
                f"{name}: sweep found {len(a.violations)} violations, "
                f"expected {'some' if expected else 'none'}"
            )

    def test_chaos_sweep_exhaustive_arm(self):
        out = chaos_sweep(mode="exhaustive", protocols=("srb-eager",))
        assert sorted(out) == ["srb-eager"]
        assert out["srb-eager"].violations

    def test_chaos_sweep_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            chaos_sweep(mode="fuzzy")


class TestExhaustiveSeparation:
    def test_separation_holds_over_all_schedules(self):
        out = run_srb_separation_exhaustive(5, 2)
        assert out.complete
        # 4! orders at each lone corner in scenarios 1-2; 24 x 24 in 3
        assert out.explorations["scenario1"].schedules == 24
        assert out.explorations["scenario2"].schedules == 24
        assert out.explorations["scenario3"].schedules == 576
        out.assert_holds()

    def test_quick_bound_stays_sound(self):
        out = run_srb_separation_exhaustive(5, 2, max_schedules=10)
        assert not out.complete
        out.assert_holds()  # a prefix of the schedule space, same verdicts


class TestExhaustiveVWA:
    def test_impossibility_over_all_schedules(self):
        out = run_vwa_rb_impossibility_exhaustive(f=2)
        assert out.complete
        assert out.explorations[5].schedules == 16
        assert out.schedules == 56
        out.assert_holds()

    def test_dpor_reduction_on_world5(self):
        from repro.agreement.worlds import _build_world, split
        from repro.mc import explore

        sets = split(4, [2, 2], ["P", "Q"])
        naive = explore(
            lambda: _build_world(5, 2, sets, 0)[0], dpor=False,
            max_schedules=500,
        )
        dpor = explore(lambda: _build_world(5, 2, sets, 0)[0], dpor=True)
        # naive blows past 500 schedules (full space: 40320); DPOR: 16
        assert not naive.complete
        assert dpor.complete and dpor.schedules == 16
        assert dpor.reduction_vs(naive) >= 5.0
