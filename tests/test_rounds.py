"""Tests for the round engine and all four transports."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.core.rounds import (
    LockStepRoundTransport,
    MessagePassingRoundTransport,
    POST,
    RoundProcess,
    SharedMemoryRoundTransport,
    TimedRoundTransport,
)
from repro.core.uni_from_sm import build_objects_for
from repro.sim import LockStepSynchronous, ReliableAsynchronous, Simulation


class Recorder(RoundProcess):
    """Begins rounds on demand; records everything it sees."""

    def __init__(self, transport, labels=()):
        super().__init__(transport)
        self.labels = list(labels)
        self.received = []
        self.completed = []

    def on_round_start(self):
        if self.labels:
            self.rounds.begin_round(("payload", self.pid), self.labels[0])

    def on_round_message(self, label, src, payload):
        self.received.append((label, src, payload))

    def on_round_complete(self, label):
        self.completed.append(label)
        idx = self.labels.index(label) if label in self.labels else -1
        if 0 <= idx < len(self.labels) - 1:
            self.rounds.begin_round(("payload", self.pid), self.labels[idx + 1])


def run_sm(n=3, labels=("r1",), seed=0, until=200.0, cls=SharedMemoryRoundTransport,
           objects_name="append-log"):
    procs = [Recorder(cls(), labels) for _ in range(n)]
    sim = Simulation(procs, ReliableAsynchronous(0.01, 0.5), seed=seed)
    for obj in build_objects_for(objects_name, n):
        sim.memory.register(obj)
    sim.run(until=until)
    return sim, procs


class TestEngineContract:
    def test_labels_unique_per_process(self):
        sim, procs = run_sm(n=1, labels=("r1",))
        with pytest.raises(SimulationError, match="reused"):
            procs[0].rounds._begin(("x",), "r1")

    def test_concurrent_begin_rejected(self):
        sim, procs = run_sm(n=1, labels=())
        p = procs[0]
        p.rounds.begin_round("a", "l1")
        with pytest.raises(SimulationError, match="still"):
            p.rounds.begin_round("b", "l2")

    def test_begin_round_queued_defers(self):
        procs = [Recorder(SharedMemoryRoundTransport(), ()) for _ in range(2)]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.2), seed=1)
        for obj in build_objects_for("append-log", 2):
            sim.memory.register(obj)

        def kickoff():
            procs[0].rounds.begin_round_queued("a", "l1")
            procs[0].rounds.begin_round_queued("b", "l2")
            procs[1].rounds.begin_round_queued("c", "l1")
            procs[1].rounds.begin_round_queued("d", "l2")

        sim.at(0.1, kickoff)
        sim.run(until=200.0)
        assert procs[0].completed == ["l1", "l2"]
        assert ("l2", 0, "b") in procs[1].received

    def test_auto_labels_are_counters(self):
        procs = [Recorder(MessagePassingRoundTransport(f=0), ()) for _ in range(2)]
        sim = Simulation(procs, seed=2)
        sim.at(0.1, lambda: [p.rounds.begin_round("x") for p in procs])
        sim.run(until=50.0)
        assert procs[0].completed == [1]

    def test_duplicate_payload_delivered_once(self):
        sim, procs = run_sm(n=2, labels=("r1",))
        keys = [(l, s) for (l, s, _p) in procs[0].received if l == "r1"]
        assert len(keys) == len(set(keys))

    def test_transport_attach_once(self):
        t = SharedMemoryRoundTransport()
        p1 = Recorder(t, ())
        t.attach(p1)
        with pytest.raises(ConfigurationError):
            t.attach(p1)


class TestSharedMemoryTransport:
    def test_round_completes_and_delivers_all(self):
        sim, procs = run_sm(n=4, labels=("r1",))
        for p in procs:
            assert p.completed == ["r1"]
            srcs = {s for (l, s, _pl) in p.received if l == "r1"}
            assert srcs == set(range(4))  # includes own entry via scan

    def test_post_reaches_everyone(self):
        procs = [Recorder(SharedMemoryRoundTransport(), ()) for _ in range(3)]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.3), seed=4)
        for obj in build_objects_for("append-log", 3):
            sim.memory.register(obj)
        sim.at(0.1, lambda: procs[0].rounds.post("news"))
        sim.run(until=120.0)
        for p in procs:
            assert (POST, 0, "news") in p.received

    def test_scan_backoff_reduces_idle_work(self):
        sim, procs = run_sm(n=2, labels=("r1",), until=500.0)
        # with exponential backoff, half a thousand time units of idleness
        # must not mean thousands of scans
        assert procs[0].rounds.scans_completed < 60

    def test_late_round_still_delivered(self):
        """Process 1 begins its round long after process 0 finished."""

        class Late(Recorder):
            def on_round_start(self):
                if self.pid == 1:
                    self.ctx.set_timer(60.0, "late")
                else:
                    self.rounds.begin_round(("early", self.pid), "r1")

            def on_timer(self, tag):
                if tag == "late":
                    self.rounds.begin_round(("late", self.pid), "r1")
                else:
                    super().on_timer(tag)

        procs = [Late(SharedMemoryRoundTransport(), ["r1"]) for _ in range(2)]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.3), seed=5)
        for obj in build_objects_for("append-log", 2):
            sim.memory.register(obj)
        sim.run(until=400.0)
        assert ("r1", 1, ("late", 1)) in procs[0].received
        assert ("r1", 0, ("early", 0)) in procs[1].received


class TestMessagePassingTransport:
    def test_completes_at_n_minus_f(self):
        procs = [Recorder(MessagePassingRoundTransport(f=1), ["r1"]) for _ in range(3)]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.3), seed=6)
        sim.crash(2)  # one silent process: rounds still complete
        sim.run(until=60.0)
        assert procs[0].completed == ["r1"] and procs[1].completed == ["r1"]

    def test_blocks_below_quorum(self):
        procs = [Recorder(MessagePassingRoundTransport(f=0), ["r1"]) for _ in range(3)]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.3), seed=7)
        sim.crash(2)
        sim.run(until=60.0)
        assert procs[0].completed == []

    def test_malformed_round_message_ignored(self):
        from repro.sim import Process

        class Junker(Process):
            def on_start(self):
                self.ctx.broadcast(("__round__", [1, 2], "junk"), include_self=False)

        r = Recorder(MessagePassingRoundTransport(f=1), [])
        sim = Simulation([Junker(), r, Recorder(MessagePassingRoundTransport(f=1), [])], seed=8)
        sim.run(until=30.0)
        assert r.received == []

    def test_negative_f_rejected(self):
        with pytest.raises(ConfigurationError):
            MessagePassingRoundTransport(f=-1)


class TestLockStepTransport:
    def test_rounds_advance_on_boundaries(self):
        procs = [Recorder(LockStepRoundTransport(period=2.0), ()) for _ in range(2)]
        sim = Simulation(procs, LockStepSynchronous(delta=1.0), seed=9)
        sim.at(0.5, lambda: procs[0].rounds.begin_round("x"))
        sim.at(0.5, lambda: procs[1].rounds.begin_round("y"))
        sim.run(until=10.0)
        # queued at 0.5 -> sent at boundary 1 (t=2) -> completes at boundary 2
        assert procs[0].completed == [1]
        assert ("x") in [p for (_l, _s, p) in procs[1].received]

    def test_custom_labels_rejected(self):
        t = LockStepRoundTransport()
        p = Recorder(t, ())
        sim = Simulation([p], LockStepSynchronous(), seed=10)
        sim.run(until=1.0)
        with pytest.raises(ConfigurationError):
            t.begin_round("x", label="custom")

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            LockStepRoundTransport(period=0)


class TestTimedTransport:
    def test_round_ends_after_wait(self):
        procs = [Recorder(TimedRoundTransport(wait=3.0), ()) for _ in range(2)]
        sim = Simulation(procs, ReliableAsynchronous(0.1, 0.5), seed=11)
        sim.at(1.0, lambda: procs[0].rounds.begin_round("x", "L"))
        sim.run(until=20.0)
        ends = sim.trace.events("round_end", pid=0)
        assert len(ends) == 1 and ends[0].time == 4.0

    def test_early_messages_buffered(self):
        """A message arriving before the receiver starts its round counts."""
        procs = [Recorder(TimedRoundTransport(wait=2.0), ()) for _ in range(2)]
        sim = Simulation(procs, ReliableAsynchronous(0.1, 0.5), seed=12)
        sim.at(0.5, lambda: procs[0].rounds.begin_round(("v", 0), "L"))
        sim.at(10.0, lambda: procs[1].rounds.begin_round(("v", 1), "L"))
        sim.run(until=30.0)
        assert ("L", 0, ("v", 0)) in procs[1].received

    def test_invalid_wait(self):
        with pytest.raises(ConfigurationError):
            TimedRoundTransport(wait=0)
