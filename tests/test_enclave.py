"""Tests for the SGX-like attested state machine."""

from __future__ import annotations

import pytest

from repro.errors import AttestationError, ConfigurationError
from repro.hardware.enclave import EnclaveAuthority, EnclaveOutput, EnclaveProgram


@pytest.fixture
def auth():
    return EnclaveAuthority(2, seed=13)


def counter_program():
    return EnclaveProgram("counter-v1", 0, lambda s, x: (s + x, s + x))


class TestExecution:
    def test_state_advances(self, auth):
        e = auth.launch(0, counter_program())
        assert e.invoke(3).output == 3
        assert e.invoke(4).output == 7
        assert e.seq == 2

    def test_outputs_verify(self, auth):
        e = auth.launch(0, counter_program())
        out = e.invoke(1)
        assert auth.check(out, 0)
        assert auth.check(out, 0, measurement="counter-v1")

    def test_measurement_pinning(self, auth):
        e = auth.launch(0, counter_program())
        out = e.invoke(1)
        assert not auth.check(out, 0, measurement="counter-v2")

    def test_wrong_device_rejected(self, auth):
        out = auth.launch(0, counter_program()).invoke(1)
        assert not auth.check(out, 1)

    def test_output_tamper_rejected(self, auth):
        out = auth.launch(0, counter_program()).invoke(1)
        forged = EnclaveOutput(out.device_id, out.measurement, out.seq,
                               out.input_hash, 999, out.tag)
        assert not auth.check(forged, 0)

    def test_seq_tamper_rejected(self, auth):
        """Replay protection: the invocation number is signed."""
        out = auth.launch(0, counter_program()).invoke(1)
        forged = EnclaveOutput(out.device_id, out.measurement, 2,
                               out.input_hash, out.output, out.tag)
        assert not auth.check(forged, 0)

    def test_old_outputs_still_verify(self, auth):
        """Attestations are statements about history, not current state."""
        e = auth.launch(0, counter_program())
        o1 = e.invoke(1)
        e.invoke(2)
        assert auth.check(o1, 0)


class TestLaunch:
    def test_multiple_enclaves_per_device(self, auth):
        e1 = auth.launch(0, counter_program())
        e2 = auth.launch(0, EnclaveProgram("other", (), lambda s, x: (s, x)))
        o1, o2 = e1.invoke(1), e2.invoke(1)
        assert auth.check(o1, 0, "counter-v1") and auth.check(o2, 0, "other")

    def test_independent_histories(self, auth):
        e1 = auth.launch(0, counter_program())
        e2 = auth.launch(0, counter_program())
        e1.invoke(10)
        assert e2.seq == 0

    def test_empty_measurement_rejected(self):
        with pytest.raises(ConfigurationError):
            EnclaveProgram("", 0, lambda s, x: (s, x))

    def test_unknown_device(self, auth):
        with pytest.raises(ConfigurationError):
            auth.launch(5, counter_program())

    def test_program_without_step(self):
        p = EnclaveProgram("stub")
        auth = EnclaveAuthority(1)
        e = auth.launch(0, p)
        with pytest.raises(NotImplementedError):
            e.invoke(1)

    def test_unserializable_input(self, auth):
        e = auth.launch(0, counter_program())
        with pytest.raises(AttestationError):
            e.invoke(object())


class TestUSIGAsEnclave:
    """The USIG service expressed as an enclave program — the paper's point
    that SGX subsumes TrInc-style counters."""

    @staticmethod
    def usig_step(state, msg_hash):
        counter = state + 1
        return counter, ("UI", counter, msg_hash)

    def test_monotone_uis(self, auth):
        e = auth.launch(0, EnclaveProgram("usig-v1", 0, self.usig_step))
        o1 = e.invoke(b"m1")
        o2 = e.invoke(b"m2")
        assert o1.output[1] == 1 and o2.output[1] == 2
        assert auth.check(o1, 0, "usig-v1") and auth.check(o2, 0, "usig-v1")
