"""One-big-run sweep sharder: determinism, shard identity, merge rules.

The R7 sharder cuts ONE logical open-loop run into contiguous timeline
slices that execute as independent simulations and merge
deterministically. The claims under test (see ``BigRunResult``):

- ``order_hash`` is a pure function of ``(seed, n_ops, rate, shards)`` —
  identical for serial and worker-pool execution of the same shard set;
- ``shards`` is part of the run's *identity* (boundaries reset protocol
  state), so a different shard count is a different logical run;
- the production scheduler and the retained pre-refactor loop replay the
  same big run to the same digest (the cross-implementation witness the
  acceptance criteria require);
- the open-loop generator and cutter are deterministic, contiguous, and
  lossless.
"""

from __future__ import annotations

import pytest

from repro.faults.chaos import one_big_run
from repro.errors import ConfigurationError
from repro.workloads.generator import (
    open_loop_arrivals,
    shard_arrivals,
    tenant_ops,
    tenant_workloads,
)

BIG = dict(seed=11, n_ops=48, rate=3.0, shards=4)


class TestOpenLoopArrivals:
    def test_deterministic_in_seed(self):
        assert open_loop_arrivals(30, seed=5) == open_loop_arrivals(30, seed=5)
        assert open_loop_arrivals(30, seed=5) != open_loop_arrivals(30, seed=6)

    def test_arrival_times_strictly_increase(self):
        arrivals = open_loop_arrivals(100, seed=2, rate=50.0)
        times = [t for t, _ in arrivals]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_times_independent_of_op_stream(self):
        # the arrival clock draws from its own rng stream, so changing the
        # op generator must not move the timestamps
        kv = open_loop_arrivals(20, seed=9, kind="uniform-kv")
        bank = open_loop_arrivals(20, seed=9, kind="bank")
        assert [t for t, _ in kv] == [t for t, _ in bank]
        assert [op for _, op in kv] != [op for _, op in bank]

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            open_loop_arrivals(10, rate=0.0)


class TestShardArrivals:
    def test_shards_are_contiguous_and_lossless(self):
        arrivals = open_loop_arrivals(47, seed=1)  # deliberately not divisible
        shards = shard_arrivals(arrivals, 5)
        assert [s.index for s in shards] == [0, 1, 2, 3, 4]
        rebuilt = [pair for s in shards for pair in s.arrivals]
        assert rebuilt == arrivals
        # contiguity across the cut points: spans never interleave
        ends = [s.span_end for s in shards if s.arrivals]
        assert ends == sorted(ends)

    def test_near_equal_op_counts(self):
        shards = shard_arrivals(open_loop_arrivals(47, seed=1), 5)
        sizes = [len(s.arrivals) for s in shards]
        assert sum(sizes) == 47
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard_is_whole_run(self):
        arrivals = open_loop_arrivals(10, seed=3)
        (only,) = shard_arrivals(arrivals, 1)
        assert only.arrivals == tuple(arrivals)

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            shard_arrivals([], 0)


class TestOverloadArrivals:
    """The generator/cutter laws must survive rates far past saturation —
    the regime the serving-layer soak drives them into."""

    def test_count_exact_at_any_rate(self):
        for rate in (0.01, 10.0, 500.0, 1e6):
            assert len(open_loop_arrivals(200, seed=4, rate=rate)) == 200

    def test_strictly_increasing_even_at_extreme_rates(self):
        # exponential interarrivals are strictly positive, so the clock
        # must never stall or go backwards however dense the stream
        times = [t for t, _ in open_loop_arrivals(500, seed=8, rate=1e6)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_mean_interarrival_tracks_rate(self):
        n = 2000
        span = open_loop_arrivals(n, seed=6, rate=100.0)[-1][0]
        assert span * 100.0 / n == pytest.approx(1.0, rel=0.1)

    def test_doubling_rate_halves_the_span(self):
        slow = open_loop_arrivals(1000, seed=6, rate=50.0)[-1][0]
        fast = open_loop_arrivals(1000, seed=6, rate=100.0)[-1][0]
        assert slow / fast == pytest.approx(2.0, rel=0.15)

    def test_sharding_lossless_at_overload_rate(self):
        arrivals = open_loop_arrivals(331, seed=12, rate=800.0)
        for n_shards in (1, 2, 7, 331, 400):
            shards = shard_arrivals(arrivals, n_shards)
            rebuilt = [pair for s in shards for pair in s.arrivals]
            assert rebuilt == arrivals, n_shards

    def test_shard_cut_is_deterministic(self):
        arrivals = open_loop_arrivals(97, seed=13, rate=800.0)
        assert shard_arrivals(arrivals, 6) == shard_arrivals(arrivals, 6)

    def test_more_shards_than_ops_yields_empty_tails(self):
        arrivals = open_loop_arrivals(3, seed=1, rate=200.0)
        shards = shard_arrivals(arrivals, 5)
        assert sum(len(s.arrivals) for s in shards) == 3
        assert any(not s.arrivals for s in shards)
        assert all(s.span_end == 0.0 for s in shards if not s.arrivals)


class TestTenantWorkloads:
    def test_deterministic_and_independent_of_fleet_size(self):
        # tenant i's stream derives from (seed, i) alone: growing the
        # fleet must not move anyone's ops
        assert tenant_ops(3, 20, seed=5) == tenant_ops(3, 20, seed=5)
        small = tenant_workloads(4, 20, seed=5)
        large = tenant_workloads(8, 20, seed=5)
        assert small == large[:4]

    def test_private_keyspace(self):
        a, b = tenant_workloads(2, 30, seed=7)
        touched = lambda ops: {op[1] for op in ops}
        assert touched(a) & touched(b) == set()

    def test_bank_opens_then_mixes_reads(self):
        ops = tenant_ops(0, 40, seed=3, kind="bank", read_ratio=0.5)
        assert ops[0] == ("open", "tenant0")
        kinds = {op[0] for op in ops[1:]}
        assert kinds == {"balance", "deposit"}

    def test_read_ratio_extremes(self):
        no_reads = tenant_ops(1, 30, seed=3, read_ratio=0.0)
        assert all(op[0] != "balance" for op in no_reads)
        all_reads = tenant_ops(1, 30, seed=3, read_ratio=1.0)
        assert all(op[0] == "balance" for op in all_reads[1:])

    def test_kv_kind(self):
        ops = tenant_ops(2, 25, seed=4, kind="kv", read_ratio=0.3)
        assert {op[0] for op in ops} <= {"get", "put"}
        assert all(op[1] == "tenant2" for op in ops)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            tenant_ops(0, 10, read_ratio=1.5)
        with pytest.raises(ConfigurationError):
            tenant_ops(0, 10, kind="graph")
        with pytest.raises(ConfigurationError):
            tenant_workloads(0, 10)


class TestOneBigRun:
    def test_serial_and_pooled_execution_identical(self):
        serial = one_big_run(**BIG)
        pooled = one_big_run(workers=2, **BIG)
        assert serial.ok and pooled.ok
        assert serial.order_hash == pooled.order_hash
        assert serial.shard_hashes == pooled.shard_hashes
        # summed deterministic counters survive the pool round-trip too
        for key in ("events_processed", "deliveries", "timer_wheel_hits",
                    "freelist_reuses"):
            assert serial.stats[key] == pooled.stats[key], key

    def test_repeatable(self):
        assert one_big_run(**BIG).order_hash == one_big_run(**BIG).order_hash

    def test_shard_count_is_run_identity(self):
        # shard boundaries reset protocol state, so a different cut is a
        # DIFFERENT logical run — not an execution detail
        four = one_big_run(**BIG)
        two = one_big_run(**{**BIG, "shards": 2})
        assert four.ok and two.ok
        assert four.order_hash != two.order_hash

    def test_seed_is_run_identity(self):
        assert (
            one_big_run(**BIG).order_hash
            != one_big_run(**{**BIG, "seed": BIG["seed"] + 1}).order_hash
        )

    def test_pre_refactor_scheduler_replays_same_run(self):
        production = one_big_run(**BIG)
        reference = one_big_run(scheduler="reference", **BIG)
        assert production.ok and reference.ok
        assert production.order_hash == reference.order_hash
        assert production.shard_hashes == reference.shard_hashes
        # and the rewrite actually engaged its machinery on this run
        assert production.stats["timer_wheel_hits"] > 0
        assert production.stats["freelist_reuses"] > 0
        assert reference.stats["timer_wheel_hits"] == 0

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ConfigurationError):
            one_big_run(scheduler="turbo", **BIG)
