"""One-big-run sweep sharder: determinism, shard identity, merge rules.

The R7 sharder cuts ONE logical open-loop run into contiguous timeline
slices that execute as independent simulations and merge
deterministically. The claims under test (see ``BigRunResult``):

- ``order_hash`` is a pure function of ``(seed, n_ops, rate, shards)`` —
  identical for serial and worker-pool execution of the same shard set;
- ``shards`` is part of the run's *identity* (boundaries reset protocol
  state), so a different shard count is a different logical run;
- the production scheduler and the retained pre-refactor loop replay the
  same big run to the same digest (the cross-implementation witness the
  acceptance criteria require);
- the open-loop generator and cutter are deterministic, contiguous, and
  lossless.
"""

from __future__ import annotations

import pytest

from repro.faults.chaos import one_big_run
from repro.errors import ConfigurationError
from repro.workloads.generator import open_loop_arrivals, shard_arrivals

BIG = dict(seed=11, n_ops=48, rate=3.0, shards=4)


class TestOpenLoopArrivals:
    def test_deterministic_in_seed(self):
        assert open_loop_arrivals(30, seed=5) == open_loop_arrivals(30, seed=5)
        assert open_loop_arrivals(30, seed=5) != open_loop_arrivals(30, seed=6)

    def test_arrival_times_strictly_increase(self):
        arrivals = open_loop_arrivals(100, seed=2, rate=50.0)
        times = [t for t, _ in arrivals]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_times_independent_of_op_stream(self):
        # the arrival clock draws from its own rng stream, so changing the
        # op generator must not move the timestamps
        kv = open_loop_arrivals(20, seed=9, kind="uniform-kv")
        bank = open_loop_arrivals(20, seed=9, kind="bank")
        assert [t for t, _ in kv] == [t for t, _ in bank]
        assert [op for _, op in kv] != [op for _, op in bank]

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            open_loop_arrivals(10, rate=0.0)


class TestShardArrivals:
    def test_shards_are_contiguous_and_lossless(self):
        arrivals = open_loop_arrivals(47, seed=1)  # deliberately not divisible
        shards = shard_arrivals(arrivals, 5)
        assert [s.index for s in shards] == [0, 1, 2, 3, 4]
        rebuilt = [pair for s in shards for pair in s.arrivals]
        assert rebuilt == arrivals
        # contiguity across the cut points: spans never interleave
        ends = [s.span_end for s in shards if s.arrivals]
        assert ends == sorted(ends)

    def test_near_equal_op_counts(self):
        shards = shard_arrivals(open_loop_arrivals(47, seed=1), 5)
        sizes = [len(s.arrivals) for s in shards]
        assert sum(sizes) == 47
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard_is_whole_run(self):
        arrivals = open_loop_arrivals(10, seed=3)
        (only,) = shard_arrivals(arrivals, 1)
        assert only.arrivals == tuple(arrivals)

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            shard_arrivals([], 0)


class TestOneBigRun:
    def test_serial_and_pooled_execution_identical(self):
        serial = one_big_run(**BIG)
        pooled = one_big_run(workers=2, **BIG)
        assert serial.ok and pooled.ok
        assert serial.order_hash == pooled.order_hash
        assert serial.shard_hashes == pooled.shard_hashes
        # summed deterministic counters survive the pool round-trip too
        for key in ("events_processed", "deliveries", "timer_wheel_hits",
                    "freelist_reuses"):
            assert serial.stats[key] == pooled.stats[key], key

    def test_repeatable(self):
        assert one_big_run(**BIG).order_hash == one_big_run(**BIG).order_hash

    def test_shard_count_is_run_identity(self):
        # shard boundaries reset protocol state, so a different cut is a
        # DIFFERENT logical run — not an execution detail
        four = one_big_run(**BIG)
        two = one_big_run(**{**BIG, "shards": 2})
        assert four.ok and two.ok
        assert four.order_hash != two.order_hash

    def test_seed_is_run_identity(self):
        assert (
            one_big_run(**BIG).order_hash
            != one_big_run(**{**BIG, "seed": BIG["seed"] + 1}).order_hash
        )

    def test_pre_refactor_scheduler_replays_same_run(self):
        production = one_big_run(**BIG)
        reference = one_big_run(scheduler="reference", **BIG)
        assert production.ok and reference.ok
        assert production.order_hash == reference.order_hash
        assert production.shard_hashes == reference.shard_hashes
        # and the rewrite actually engaged its machinery on this run
        assert production.stats["timer_wheel_hits"] > 0
        assert production.stats["freelist_reuses"] > 0
        assert reference.stats["timer_wheel_hits"] == 0

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ConfigurationError):
            one_big_run(scheduler="turbo", **BIG)
