"""Tests for replicated apps, the safety checker, workloads, and analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import format_kv, format_table, percentile, summarize
from repro.consensus.apps import BankApp, CounterApp, KVStoreApp, NoopApp, make_app
from repro.consensus.safety import check_replication
from repro.errors import ConfigurationError
from repro.sim.trace import Trace
from repro.workloads import WorkloadSpec, bank_transfers, generate_workload, skewed_kv, uniform_kv


class TestApps:
    def test_counter(self):
        app = CounterApp()
        assert app.apply(("add", 5)) == 5
        assert app.apply(("add", -2)) == 3
        assert app.apply(("get",)) == 3

    def test_kv(self):
        app = KVStoreApp()
        assert app.apply(("put", "k", "v")) == "OK"
        assert app.apply(("get", "k")) == "v"
        assert app.apply(("cas", "k", "v", "w")) is True
        assert app.apply(("cas", "k", "v", "x")) is False
        assert app.apply(("delete", "k")) is True
        assert app.apply(("delete", "k")) is False

    def test_bank_order_sensitivity(self):
        app = BankApp()
        app.apply(("open", "a"))
        app.apply(("open", "b"))
        app.apply(("deposit", "a", 50))
        assert app.apply(("transfer", "a", "b", 60)) == "INSUFFICIENT"
        assert app.apply(("transfer", "a", "b", 30)) == "OK"
        assert app.apply(("balance", "b")) == 30
        assert app.apply(("deposit", "ghost", 1)) == "NO-ACCOUNT"

    def test_unknown_ops_raise(self):
        for app in (CounterApp(), KVStoreApp(), BankApp()):
            with pytest.raises(ConfigurationError):
                app.apply(("fly",))

    def test_make_app(self):
        assert isinstance(make_app("noop"), NoopApp)
        with pytest.raises(ConfigurationError):
            make_app("nope")

    @given(st.lists(st.tuples(st.sampled_from(["put", "get", "delete"]),
                              st.sampled_from(["a", "b", "c"])), max_size=30))
    @settings(max_examples=50)
    def test_kv_determinism(self, spec):
        ops = []
        for kind, key in spec:
            if kind == "put":
                ops.append(("put", key, key * 2))
            else:
                ops.append((kind, key))
        a, b = KVStoreApp(), KVStoreApp()
        ra = [a.apply(op) for op in ops]
        rb = [b.apply(op) for op in ops]
        assert ra == rb and a.digest() == b.digest()


def trace_with_executions(executions, dones=()):
    t = Trace()
    for i, (replica, seq, client, req_id, op, result) in enumerate(executions):
        t.record(float(i), "custom", replica, event="execute", seq=seq,
                 client=client, req_id=req_id, op=op, result=result)
    for client, ops in dones:
        t.record(99.0, "custom", client, event="client_done", ops=ops)
    return t


class TestSafetyChecker:
    def test_clean_logs_pass(self):
        t = trace_with_executions([
            (0, 1, 9, 1, ("add", 1), 1), (1, 1, 9, 1, ("add", 1), 1),
            (0, 2, 9, 2, ("add", 1), 2), (1, 2, 9, 2, ("add", 1), 2),
        ], dones=[(9, 2)])
        check_replication(t, [0, 1], expected_ops={9: 2}).assert_ok()

    def test_slot_divergence_flagged(self):
        t = trace_with_executions([
            (0, 1, 9, 1, ("add", 1), 1),
            (1, 1, 9, 2, ("add", 2), 2),  # different request at slot 1
        ])
        rep = check_replication(t, [0, 1])
        assert rep.violations

    def test_result_divergence_flagged(self):
        t = trace_with_executions([
            (0, 1, 9, 1, ("add", 1), 1),
            (1, 1, 9, 1, ("add", 1), 999),
        ])
        rep = check_replication(t, [0, 1])
        assert any("diverges across replicas" in v for v in rep.violations)

    def test_hole_flagged(self):
        t = trace_with_executions([(0, 2, 9, 1, ("add", 1), 1)])
        rep = check_replication(t, [0])
        assert any("non-contiguous" in v for v in rep.violations)

    def test_duplicate_execution_flagged(self):
        t = trace_with_executions([
            (0, 1, 9, 1, ("add", 1), 1),
            (0, 2, 9, 1, ("add", 1), 2),
        ])
        rep = check_replication(t, [0])
        assert any("twice" in v for v in rep.violations)

    def test_client_liveness(self):
        t = trace_with_executions([], dones=[(9, 3)])
        rep = check_replication(t, [0], expected_ops={9: 3, 10: 2})
        assert any("client 10" in v for v in rep.liveness_violations)
        rep2 = check_replication(t, [0], expected_ops={9: 5})
        assert any("3/5" in v for v in rep2.liveness_violations)


class TestWorkloads:
    def test_uniform_deterministic(self):
        assert uniform_kv(20, seed=1) == uniform_kv(20, seed=1)
        assert uniform_kv(20, seed=1) != uniform_kv(20, seed=2)

    def test_skew_concentrates_on_hot_keys(self):
        ops = skewed_kv(2000, seed=3, keys=16, zipf_s=1.5)
        from collections import Counter

        keys = Counter(op[1] for op in ops)
        assert keys["k0"] > keys.get("k15", 0) * 3

    def test_bank_workload_shape(self):
        ops = bank_transfers(30, seed=4, accounts=4)
        assert len(ops) == 30
        assert ops[0][0] == "open"
        assert any(op[0] == "transfer" for op in ops)

    def test_generate_by_spec(self):
        spec = WorkloadSpec(kind="uniform-kv", n_ops=10, seed=5)
        assert len(generate_workload(spec)) == 10
        with pytest.raises(ConfigurationError):
            generate_workload(WorkloadSpec(kind="nope", n_ops=1))

    def test_zipf_validation(self):
        with pytest.raises(ConfigurationError):
            skewed_kv(5, zipf_s=0)


class TestAnalysis:
    def test_percentiles(self):
        vals = sorted(range(1, 101))
        assert percentile(vals, 0.0) == 1
        assert percentile(vals, 1.0) == 100
        assert abs(percentile(vals, 0.5) - 50.5) < 1e-9

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4 and s.mean == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert "p95" in s.row()

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])
        with pytest.raises(ConfigurationError):
            percentile([], 0.5)
        with pytest.raises(ConfigurationError):
            percentile([1.0], 2.0)

    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert len(lines) == 5

    def test_format_kv(self):
        out = format_kv("Run", [("metric", 1), ("longer_name", "x")])
        assert "metric" in out and "longer_name" in out
