"""Tests for Theorem 1: the TrInc interface implemented over SRB."""

from __future__ import annotations

import pytest

from repro.core.srb_oracle import SRBOracle
from repro.core.trinc_from_srb import SRBAttestation, SRBTrincVerifier, SRBTrinket
from repro.errors import AttestationError
from repro.sim import Process, Simulation


class Node(Process):
    def __init__(self, n):
        super().__init__()
        self.verifier = SRBTrincVerifier(n)


def build(n, seed, policy=None):
    procs = [Node(n) for _ in range(n)]
    oracle = SRBOracle(policy=policy, seed=seed)
    sim = Simulation(procs, seed=seed)
    oracle.bind(sim)
    for p in range(n):
        oracle.subscribe(p, procs[p].verifier.on_deliver)
    trinkets = [SRBTrinket(oracle.sender_handle(p)) for p in range(n)]
    return sim, procs, trinkets


class TestCompleteness:
    def test_correct_attestation_validates_everywhere(self):
        sim, procs, trinkets = build(4, seed=1)
        box = {}
        sim.at(0.1, lambda: box.setdefault("a", trinkets[2].attest(3, "msg")))
        sim.run_to_quiescence()
        for p in procs:
            assert p.verifier.check_attestation(box["a"], 2)

    def test_monotone_stream_all_validate(self):
        sim, procs, trinkets = build(3, seed=2)
        box = []
        def drive():
            for c in (1, 2, 10, 11):
                box.append(trinkets[0].attest(c, f"m{c}"))
        sim.at(0.1, drive)
        sim.run_to_quiescence()
        for a in box:
            assert all(p.verifier.check_attestation(a, 0) for p in procs)

    def test_local_monotonicity_enforced(self):
        sim, procs, trinkets = build(2, seed=3)
        results = {}
        def drive():
            results["first"] = trinkets[0].attest(5, "x")
            results["stale"] = trinkets[0].attest(5, "y")
            results["lower"] = trinkets[0].attest(3, "z")
        sim.at(0.1, drive)
        sim.run_to_quiescence()
        assert results["first"] is not None
        assert results["stale"] is None and results["lower"] is None
        assert trinkets[0].attest_refusals == 2


class TestSoundness:
    def test_duplicate_counter_rejected_everywhere(self):
        """The theorem's key case: a Byzantine host re-uses a counter value.

        All correct verifiers deliver the stream in the same order, store the
        first claim for c, and reject the second — no process ever validates
        both."""
        sim, procs, trinkets = build(4, seed=4)
        box = {}
        def drive():
            box["good"] = trinkets[1].attest(7, "honest")
            box["dup"] = trinkets[1].attest_unchecked(7, "conflicting")
            box["lower"] = trinkets[1].attest_unchecked(2, "rollback")
        sim.at(0.1, drive)
        sim.run_to_quiescence()
        for p in procs:
            assert p.verifier.check_attestation(box["good"], 1)
            assert not p.verifier.check_attestation(box["dup"], 1)
            assert not p.verifier.check_attestation(box["lower"], 1)

    def test_wrong_trinket_id(self):
        sim, procs, trinkets = build(3, seed=5)
        box = {}
        sim.at(0.1, lambda: box.setdefault("a", trinkets[0].attest(1, "m")))
        sim.run_to_quiescence()
        assert not procs[1].verifier.check_attestation(box["a"], 2)

    def test_fabricated_attestation_fails(self):
        sim, procs, trinkets = build(3, seed=6)
        sim.run_to_quiescence()
        fake = SRBAttestation(attester=0, broadcast_seq=1, counter=1, message="m")
        assert not procs[1].verifier.check_attestation(fake, 0)

    def test_tampered_message_fails(self):
        sim, procs, trinkets = build(3, seed=7)
        box = {}
        sim.at(0.1, lambda: box.setdefault("a", trinkets[0].attest(1, "real")))
        sim.run_to_quiescence()
        a = box["a"]
        forged = SRBAttestation(a.attester, a.broadcast_seq, a.counter, "forged")
        assert not procs[1].verifier.check_attestation(forged, 0)

    def test_junk_shapes(self):
        v = SRBTrincVerifier(2)
        assert not v.check_attestation("junk", 0)
        assert not v.check_attestation(None, 1)
        v.on_deliver(0, 1, "not-a-pair")  # must not crash
        v.on_deliver(0, 2, ("notint", "m"))
        assert v.highest_counter(0) == 0


class TestInputValidation:
    def test_bad_counter_values(self):
        sim, procs, trinkets = build(2, seed=8)
        sim.run(until=0.1)
        with pytest.raises(AttestationError):
            trinkets[0].attest(0, "m")
        with pytest.raises(AttestationError):
            trinkets[0].attest("one", "m")


class TestEventualVisibility:
    def test_check_becomes_true_after_delivery(self):
        """CheckAttestation may say False before delivery — and must flip."""
        sim, procs, trinkets = build(2, seed=9)
        observations = []
        box = {}

        def attest_then_check():
            box["a"] = trinkets[0].attest(1, "m")
            observations.append(procs[1].verifier.check_attestation(box["a"], 0))

        sim.at(0.1, attest_then_check)
        sim.run_to_quiescence()
        observations.append(procs[1].verifier.check_attestation(box["a"], 0))
        assert observations == [False, True]
