"""Parallel chaos sweeps: bit-identical to serial, plus report plumbing.

``chaos_sweep(workers=N)`` fans the grid over worker processes; every run
resets the process-global crypto caches on entry, so the per-run
:class:`CryptoStats` embedded in ``ChaosResult.stats`` — and therefore the
entire result object — must come back identical to the serial sweep. The
fast tests cover a small grid; the ``slow``-marked sweep runs the full
acceptance grid (both protocols × ``range(10)``).
"""

from __future__ import annotations

import pytest

from repro.crypto.serialize import caching_disabled
from repro.errors import ConfigurationError
from repro.faults.chaos import (
    ChaosResult,
    chaos_sweep,
    format_failures,
    replay_from_hint,
    run_chaos,
)


def as_tuple(r: ChaosResult) -> tuple:
    return (r.protocol, r.seed, r.ok, r.violations, r.schedule, r.stats,
            r.abort_index, r.liveness_violations)


class TestParallelSweep:
    def test_workers_bit_identical_small_grid(self):
        kw = dict(protocols=("srb-uni", "minbft"), seeds=range(2),
                  horizon=250.0)
        serial = chaos_sweep(**kw)
        parallel = chaos_sweep(workers=4, **kw)
        assert [as_tuple(r) for r in parallel] == [as_tuple(r) for r in serial]
        assert all("crypto" in r.stats for r in parallel)

    @pytest.mark.slow
    def test_workers_bit_identical_full_grid(self):
        kw = dict(protocols=("srb-uni", "minbft"), seeds=range(10))
        serial = chaos_sweep(**kw)
        parallel = chaos_sweep(workers=4, **kw)
        assert [as_tuple(r) for r in parallel] == [as_tuple(r) for r in serial]

    def test_workers_one_is_serial_path(self):
        kw = dict(protocols=("srb-uni",), seeds=range(2), horizon=250.0)
        assert [as_tuple(r) for r in chaos_sweep(workers=1, **kw)] == [
            as_tuple(r) for r in chaos_sweep(**kw)
        ]

    def test_workers_respect_caching_disabled(self):
        # pool workers are fresh interpreters where caching defaults to on;
        # the sweep must ship the parent's flag along or an uncached sweep
        # silently runs cached in parallel (different CryptoStats)
        kw = dict(protocols=("srb-uni",), seeds=range(2), horizon=250.0)
        with caching_disabled():
            serial = chaos_sweep(**kw)
            parallel = chaos_sweep(workers=2, **kw)
        assert [as_tuple(r) for r in parallel] == [as_tuple(r) for r in serial]
        for r in parallel:
            assert r.stats["crypto"]["verify_hits"] == 0
            assert r.stats["crypto"]["serialize_hits"] == 0

    def test_crypto_stats_reset_per_run(self):
        # back-to-back runs must report identical per-run counters: the
        # second run starts from a cold cache, not the first run's warm one
        first = run_chaos("srb-uni", 3, horizon=250.0)
        second = run_chaos("srb-uni", 3, horizon=250.0)
        assert first.stats["crypto"] == second.stats["crypto"]
        assert first.stats["crypto"]["hmac_ops"] > 0


class TestReplayHint:
    def test_round_trip(self):
        original = run_chaos("srb-uni", 4, horizon=250.0)
        replayed = replay_from_hint(original.replay_hint(), horizon=250.0)
        assert as_tuple(replayed) == as_tuple(original)

    def test_round_trip_from_parallel_sweep(self):
        results = chaos_sweep(protocols=("minbft",), seeds=range(2),
                              horizon=250.0, workers=2)
        for r in results:
            replayed = replay_from_hint(r.replay_hint(), horizon=250.0)
            assert as_tuple(replayed) == as_tuple(r)

    def test_hint_embedded_in_surrounding_text(self):
        r = replay_from_hint(
            "CI log noise ... replay with: "
            "repro.faults.chaos.replay('srb-uni', 2) ... more noise",
            horizon=250.0,
        )
        assert (r.protocol, r.seed) == ("srb-uni", 2)

    def test_garbage_hint_rejected(self):
        with pytest.raises(ConfigurationError):
            replay_from_hint("no hint here")


def fake_result(seed: int, violations: list[str],
                liveness: list[str] | None = None) -> ChaosResult:
    return ChaosResult(
        protocol="srb-uni-broken", seed=seed, ok=False,
        violations=violations, schedule=f"seed={seed}\n  synthetic",
        liveness_violations=liveness or [],
    )


class TestFormatFailuresDedup:
    def test_identical_violations_collapsed_across_seeds(self):
        msg = "sequencing: p1 delivered seq 3 before seq 2"
        out = format_failures([fake_result(s, [msg]) for s in range(6)])
        assert out.count(msg) == 1
        assert out.count("1 identical to earlier seeds") == 5
        # every failing seed still gets its block and replay hint
        for s in range(6):
            assert f"repro.faults.chaos.replay('srb-uni-broken', {s})" in out

    def test_distinct_violations_all_shown(self):
        out = format_failures([
            fake_result(0, ["violation A"]),
            fake_result(1, ["violation B"]),
        ])
        assert "violation A" in out and "violation B" in out
        assert "identical to earlier seeds" not in out

    def test_liveness_deduped_separately(self):
        miss = "request (4, 1) not executed within bound"
        out = format_failures([
            fake_result(s, [], liveness=[miss]) for s in range(3)
        ])
        assert out.count(miss) == 1
        assert "identical to earlier seeds" in out

    def test_all_clean(self):
        ok = ChaosResult(protocol="srb-uni", seed=0, ok=True, violations=[],
                         schedule="s")
        assert format_failures([ok]) == "all chaos runs clean"

    def test_real_broken_protocol_sweep_dedupes(self):
        results = chaos_sweep(protocols=("srb-uni-broken",), seeds=range(4),
                              horizon=250.0)
        bad = [r for r in results if not r.ok]
        assert bad, "the broken protocol fixture should fail some seeds"
        out = format_failures(results)
        # the report must stay parseable: one block per failing seed
        assert out.count("replay with:") == len(bad)
