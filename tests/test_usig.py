"""Tests for the USIG service and UI-order enforcement."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus.usig import UI, UIOrderEnforcer, USIG, USIGVerifier
from repro.hardware.trinc import TrincAuthority


@pytest.fixture
def parts():
    auth = TrincAuthority(2, seed=3)
    usig = USIG(auth.trinket(0))
    verifier = USIGVerifier(auth)
    return auth, usig, verifier


class TestUSIG:
    def test_sequential_counters(self, parts):
        _, usig, verifier = parts
        u1 = usig.create_ui("m1")
        u2 = usig.create_ui("m2")
        assert (u1.counter, u2.counter) == (1, 2)
        assert verifier.verify_ui(u1, "m1", 0)
        assert verifier.verify_ui(u2, "m2", 0)

    def test_binding_to_message(self, parts):
        _, usig, verifier = parts
        ui = usig.create_ui("m1")
        assert not verifier.verify_ui(ui, "m2", 0)

    def test_binding_to_replica(self, parts):
        _, usig, verifier = parts
        ui = usig.create_ui("m")
        assert not verifier.verify_ui(ui, "m", 1)

    def test_counter_tamper_rejected(self, parts):
        _, usig, verifier = parts
        ui = usig.create_ui("m")
        forged = UI(replica=0, counter=5, attestation=ui.attestation)
        assert not verifier.verify_ui(forged, "m", 0)

    def test_gapped_attestation_rejected(self, parts):
        """A UI whose underlying attestation skipped counters is invalid."""
        auth, usig, verifier = parts
        trinket = auth.trinket(1)
        att = trinket.attest(5, __import__("repro.crypto.serialize",
                                           fromlist=["content_hash"]).content_hash("m"))
        gapped = UI(replica=1, counter=5, attestation=att)
        assert not verifier.verify_ui(gapped, "m", 1)

    def test_junk_rejected(self, parts):
        _, _, verifier = parts
        assert not verifier.verify_ui("junk", "m", 0)
        assert not verifier.verify_ui(UI(0, 1, "not-an-attestation"), "m", 0)

    def test_unserializable_message(self, parts):
        _, usig, verifier = parts
        ui = usig.create_ui("m")
        assert not verifier.verify_ui(ui, object(), 0)


class TestUIOrderEnforcer:
    def test_in_order_release(self):
        out = []
        enf = UIOrderEnforcer(lambda r, c, item: out.append((r, c, item)))
        enf.submit(0, 1, "a")
        enf.submit(0, 2, "b")
        assert out == [(0, 1, "a"), (0, 2, "b")]

    def test_holdback_until_gap_fills(self):
        out = []
        enf = UIOrderEnforcer(lambda r, c, item: out.append(c))
        enf.submit(0, 3, "c")
        enf.submit(0, 2, "b")
        assert out == []
        enf.submit(0, 1, "a")
        assert out == [1, 2, 3]

    def test_duplicates_and_replays_dropped(self):
        out = []
        enf = UIOrderEnforcer(lambda r, c, item: out.append((c, item)))
        enf.submit(0, 1, "a")
        enf.submit(0, 1, "a-again")
        enf.submit(0, 2, "b")
        enf.submit(0, 2, "b-later")
        assert out == [(1, "a"), (2, "b")]

    def test_streams_independent(self):
        out = []
        enf = UIOrderEnforcer(lambda r, c, item: out.append((r, c)))
        enf.submit(1, 1, "x")
        enf.submit(0, 2, "held")
        enf.submit(1, 2, "y")
        assert out == [(1, 1), (1, 2)]
        assert enf.expected(0) == 1

    @given(st.permutations(list(range(1, 9))))
    @settings(max_examples=40)
    def test_any_arrival_order_releases_in_order(self, order):
        out = []
        enf = UIOrderEnforcer(lambda r, c, item: out.append(c))
        for c in order:
            enf.submit(0, c, f"m{c}")
        assert out == list(range(1, 9))
