"""Tests for the enclave-backed USIG and its use inside MinBFT."""

from __future__ import annotations

import pytest

from repro.consensus.enclave_usig import (
    EnclaveUI,
    EnclaveUSIG,
    EnclaveUSIGVerifier,
    USIG_MEASUREMENT,
    usig_program,
)
from repro.errors import ConfigurationError
from repro.hardware.enclave import EnclaveAuthority, EnclaveProgram


@pytest.fixture
def parts():
    auth = EnclaveAuthority(2, seed=21)
    usig = EnclaveUSIG(auth.launch(0, usig_program()))
    return auth, usig, EnclaveUSIGVerifier(auth)


class TestEnclaveUSIG:
    def test_sequential_counters(self, parts):
        _, usig, verifier = parts
        u1, u2 = usig.create_ui("m1"), usig.create_ui("m2")
        assert (u1.counter, u2.counter) == (1, 2)
        assert verifier.verify_ui(u1, "m1", 0)
        assert verifier.verify_ui(u2, "m2", 0)

    def test_binding(self, parts):
        _, usig, verifier = parts
        ui = usig.create_ui("m")
        assert not verifier.verify_ui(ui, "other", 0)
        assert not verifier.verify_ui(ui, "m", 1)

    def test_counter_tamper_rejected(self, parts):
        _, usig, verifier = parts
        ui = usig.create_ui("m")
        forged = EnclaveUI(replica=0, counter=9, attestation=ui.attestation)
        assert not verifier.verify_ui(forged, "m", 0)

    def test_wrong_program_rejected(self):
        auth = EnclaveAuthority(1, seed=22)
        rogue = auth.launch(0, EnclaveProgram("rogue", 0,
                                              lambda c, h: (c + 1, ("UI", c + 1, h))))
        with pytest.raises(ConfigurationError):
            EnclaveUSIG(rogue)
        # even a hand-built UI over the rogue program's output fails the
        # measurement check
        out = rogue.invoke(b"h")
        verifier = EnclaveUSIGVerifier(auth)
        fake = EnclaveUI(replica=0, counter=1, attestation=out)
        assert not verifier.verify_ui(fake, b"h", 0)

    def test_junk(self, parts):
        _, _, verifier = parts
        assert not verifier.verify_ui("junk", "m", 0)


class TestMinBFTOnEnclaves:
    def test_full_replication_run(self):
        """MinBFT with every replica's USIG hosted in an SGX-style enclave —
        the paper's 'SGX is in the trusted-log class', operational."""
        from repro.consensus import BFTClient, MinBFTReplica, check_replication, make_app
        from repro.crypto import SignatureScheme
        from repro.sim import ReliableAsynchronous, Simulation

        f, n_clients, ops = 1, 1, 4
        n = 2 * f + 1
        scheme = SignatureScheme(n + n_clients, seed=23)
        enclave_auth = EnclaveAuthority(n, seed=23)
        verifier = EnclaveUSIGVerifier(enclave_auth)
        replicas = [
            MinBFTReplica(
                n=n,
                usig=EnclaveUSIG(enclave_auth.launch(p, usig_program())),
                verifier=verifier,
                scheme=scheme,
                signer=scheme.signer(p),
                app=make_app("counter"),
                req_timeout=20.0,
            )
            for p in range(n)
        ]
        client = BFTClient(replicas=range(n), reply_quorum=f + 1,
                           ops=[("add", i + 1) for i in range(ops)],
                           retry_timeout=60.0)
        client.scheme = scheme
        client.signer = scheme.signer(n)
        sim = Simulation([*replicas, client],
                         ReliableAsynchronous(0.01, 0.5), seed=23)
        sim.run(until=3000.0)
        rep = check_replication(sim.trace, range(n), expected_ops={n: ops})
        rep.assert_ok()
        assert all(r.commits_executed == ops for r in replicas)

    def test_enclave_primary_crash_view_change(self):
        """The tamper-evident-log view change works over enclave UIs too."""
        from repro.consensus import BFTClient, MinBFTReplica, check_replication, make_app
        from repro.crypto import SignatureScheme
        from repro.sim import ReliableAsynchronous, Simulation

        f, ops = 1, 5
        n = 2 * f + 1
        scheme = SignatureScheme(n + 1, seed=24)
        enclave_auth = EnclaveAuthority(n, seed=24)
        verifier = EnclaveUSIGVerifier(enclave_auth)
        replicas = [
            MinBFTReplica(
                n=n,
                usig=EnclaveUSIG(enclave_auth.launch(p, usig_program())),
                verifier=verifier,
                scheme=scheme,
                signer=scheme.signer(p),
                app=make_app("counter"),
                req_timeout=20.0,
            )
            for p in range(n)
        ]
        client = BFTClient(replicas=range(n), reply_quorum=f + 1,
                           ops=[("add", 1)] * ops, retry_timeout=60.0)
        client.scheme = scheme
        client.signer = scheme.signer(n)
        sim = Simulation([*replicas, client],
                         ReliableAsynchronous(0.01, 0.5), seed=24)
        sim.crash_at(0, 2.0)
        sim.run(until=8000.0)
        rep = check_replication(sim.trace, [1, 2], expected_ops={n: ops})
        rep.assert_ok()
        assert all(r.view >= 1 for r in replicas[1:])
