"""Tests for the Jacobson/Karels timeout policies."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults.timeouts import (
    AdaptiveTimeout,
    FixedTimeout,
    JitteredPolicy,
    RetryBudget,
    RttEstimator,
    TimeoutPolicy,
    derive_jitter_rng,
    make_policy_factory,
)


class TestRttEstimator:
    def test_first_sample_seeds_rfc6298(self):
        est = RttEstimator()
        assert est.rto() is None
        est.observe(4.0)
        # srtt = 4, rttvar = 2, rto = 4 + 4*2
        assert est.srtt == 4.0
        assert est.rttvar == 2.0
        assert est.rto() == pytest.approx(12.0)

    def test_converges_on_steady_rtt(self):
        est = RttEstimator()
        for _ in range(200):
            est.observe(1.0)
        assert est.srtt == pytest.approx(1.0)
        assert est.rttvar == pytest.approx(0.0, abs=1e-6)
        assert est.rto() == pytest.approx(1.0, abs=1e-3)

    def test_variance_widens_rto_under_jitter(self):
        steady, jittery = RttEstimator(), RttEstimator()
        for i in range(100):
            steady.observe(1.0)
            jittery.observe(1.0 if i % 2 == 0 else 3.0)
        assert jittery.rto() > steady.rto()

    def test_rejects_negative_sample_and_bad_gains(self):
        with pytest.raises(ConfigurationError):
            RttEstimator().observe(-0.1)
        with pytest.raises(ConfigurationError):
            RttEstimator(alpha=0.0)
        with pytest.raises(ConfigurationError):
            RttEstimator(beta=1.5)


class TestFixedTimeout:
    def test_default_is_constant_legacy_timer(self):
        p = FixedTimeout(25.0)
        assert p.current() == 25.0
        p.escalate()
        p.escalate()
        assert p.current() == 25.0  # backoff=1.0: exactly the legacy re-arm

    def test_backoff_variant_grows_and_resets(self):
        p = FixedTimeout(2.0, backoff=2.0, max_timeout=10.0)
        assert p.current() == 2.0
        assert p.escalate() == 4.0
        assert p.escalate() == 8.0
        assert p.escalate() == 10.0  # clamped
        p.note_progress()
        assert p.current() == 2.0

    def test_observe_is_a_noop(self):
        p = FixedTimeout(5.0)
        p.observe(0.001)
        assert p.current() == 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedTimeout(0.0)
        with pytest.raises(ConfigurationError):
            FixedTimeout(1.0, backoff=0.5)


class TestAdaptiveTimeout:
    def test_falls_back_to_initial_before_samples(self):
        p = AdaptiveTimeout(25.0)
        assert p.current() == 25.0

    def test_tracks_measured_rtt_down(self):
        p = AdaptiveTimeout(25.0, min_timeout=0.5, margin=2.0)
        for _ in range(100):
            p.observe(1.0)
        # rto -> ~1.0, margin 2 -> ~2.0: far below the 25.0 initial
        assert p.current() < 5.0
        assert p.current() >= 0.5

    def test_clamps_to_min_and_max(self):
        p = AdaptiveTimeout(10.0, min_timeout=3.0, max_timeout=20.0)
        for _ in range(50):
            p.observe(0.001)
        assert p.current() == 3.0
        q = AdaptiveTimeout(10.0, min_timeout=1.0, max_timeout=20.0)
        for _ in range(50):
            q.observe(100.0)
        assert q.current() == 20.0

    def test_escalation_backs_off_then_progress_resets(self):
        p = AdaptiveTimeout(25.0, min_timeout=1.0, margin=2.0)
        for _ in range(50):
            p.observe(1.0)
        base = p.current()
        assert p.escalate() == pytest.approx(2 * base)
        p.note_progress()
        assert p.current() == pytest.approx(base)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveTimeout(0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveTimeout(1.0, min_timeout=5.0, max_timeout=2.0)
        with pytest.raises(ConfigurationError):
            AdaptiveTimeout(1.0, margin=0.5)


class TestPolicyFactory:
    def test_factories_yield_fresh_instances(self):
        factory = make_policy_factory("adaptive", base=10.0)
        a, b = factory(), factory()
        assert a is not b
        a.observe(0.1)
        assert b.estimator.samples == 0  # no shared estimator state

    def test_both_kinds_satisfy_the_protocol(self):
        for kind in ("fixed", "adaptive"):
            p = make_policy_factory(kind, base=5.0)()
            assert isinstance(p, TimeoutPolicy)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy_factory("magic", base=1.0)


class TestRetryBudget:
    def test_reserve_spends_then_exhausts(self):
        budget = RetryBudget(ratio=0.0, min_reserve=2.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert (budget.retries_granted, budget.retries_denied) == (2, 1)

    def test_sends_deposit_ratio_tokens(self):
        budget = RetryBudget(ratio=0.1, min_reserve=0.0)
        assert not budget.try_spend()  # empty reserve
        for _ in range(11):  # 11, not 10: 10 * 0.1 sums to just under 1.0
            budget.note_send()
        assert budget.tokens == pytest.approx(1.1)
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_amplification_bounded_by_ratio(self):
        # whatever the failure pattern, retries <= ratio * sends + reserve
        budget = RetryBudget(ratio=0.1, min_reserve=3.0)
        sends = 200
        retries = 0
        for _ in range(sends):
            budget.note_send()
            while budget.try_spend():  # adversarial: retry whenever allowed
                retries += 1
        assert retries <= 0.1 * sends + 3.0

    def test_tokens_capped_at_max(self):
        budget = RetryBudget(ratio=1.0, min_reserve=0.0, max_tokens=5.0)
        for _ in range(50):
            budget.note_send()
        assert budget.tokens == 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ConfigurationError):
            RetryBudget(min_reserve=-1.0)
        with pytest.raises(ConfigurationError):
            RetryBudget(min_reserve=5.0, max_tokens=4.0)


class TestJitteredPolicy:
    def test_jitter_stays_in_multiplicative_band(self):
        policy = JitteredPolicy(
            FixedTimeout(10.0), derive_jitter_rng(0, "t"), jitter=0.5
        )
        for _ in range(100):
            assert 10.0 <= policy.current() <= 15.0

    def test_seed_deterministic_draws(self):
        draws = [
            [
                JitteredPolicy(
                    FixedTimeout(10.0), derive_jitter_rng(7, "pid", 3)
                ).current()
                for _ in range(5)
            ]
            for _ in range(2)
        ]
        assert draws[0] == draws[1]

    def test_escalation_passes_through_to_inner(self):
        inner = FixedTimeout(1.0, backoff=2.0, max_timeout=100.0)
        policy = JitteredPolicy(inner, derive_jitter_rng(0), jitter=0.0)
        policy.escalate()
        assert policy.current() == pytest.approx(2.0)
        policy.note_progress()
        assert policy.current() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JitteredPolicy(FixedTimeout(1.0), derive_jitter_rng(0), jitter=-1.0)


class TestDeriveJitterRng:
    def test_same_material_same_stream(self):
        a = derive_jitter_rng(42, "pid", 5)
        b = derive_jitter_rng(42, "pid", 5)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_labels_and_seed_separate_streams(self):
        base = derive_jitter_rng(42, "pid", 5).random()
        assert derive_jitter_rng(43, "pid", 5).random() != base
        assert derive_jitter_rng(42, "pid", 6).random() != base
        assert derive_jitter_rng(42, "tenant", 5).random() != base
