"""Tests for MinBFT request batching, windowing, and their interaction."""

from __future__ import annotations

import pytest

from repro.consensus import build_minbft_system, check_replication
from repro.consensus.minbft import MinBFTReplica, proposal_requests


def with_batching(**extra):
    def factory(pid, **kwargs):
        return MinBFTReplica(batching=True, **extra, **kwargs)
    return factory


class TestProposalHelpers:
    def test_single_request_passthrough(self):
        req = ("REQUEST", 5, 1, ("add", 1), "sig")
        assert proposal_requests(req) == [req]

    def test_batch_unpacks(self):
        r1 = ("REQUEST", 5, 1, ("add", 1), "sig")
        r2 = ("REQUEST", 6, 1, ("add", 2), "sig")
        assert proposal_requests(("BATCH", r1, r2)) == [r1, r2]


class TestBatching:
    def test_multi_client_batched_run(self):
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=4, ops_per_client=4, seed=1,
            replica_factory=with_batching(),
        )
        sim.run(until=8000.0)
        n = len(reps)
        rep = check_replication(
            sim.trace, range(n),
            expected_ops={n + c: 4 for c in range(4)},
        )
        rep.assert_ok()
        assert all(r.commits_executed == 16 for r in reps)

    def test_batching_uses_fewer_slots(self):
        def run(batching):
            factory = with_batching() if batching else None
            sim, reps, clients = build_minbft_system(
                f=1, n_clients=4, ops_per_client=3, seed=2,
                replica_factory=factory,
            )
            sim.run(until=8000.0)
            n = len(reps)
            check_replication(
                sim.trace, range(n),
                expected_ops={n + c: 3 for c in range(4)},
            ).assert_ok()
            return max(r.exec_next - 1 for r in reps), sim.network.messages_sent

        slots_b, msgs_b = run(True)
        slots_u, msgs_u = run(False)
        assert slots_b < slots_u
        assert msgs_b < msgs_u

    def test_batched_primary_crash_failover(self):
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=2, ops_per_client=4, seed=3,
            replica_factory=with_batching(checkpoint_interval=2),
            req_timeout=20.0, retry_timeout=60.0,
        )
        sim.crash_at(0, 1.0)
        sim.run(until=12000.0)
        n = len(reps)
        rep = check_replication(
            sim.trace, [1, 2], expected_ops={n: 4, n + 1: 4}
        )
        rep.assert_ok()
        assert reps[1].app.digest() == reps[2].app.digest()

    def test_batched_and_unbatched_states_agree(self):
        """Both modes produce the same final app state for a fixed workload."""
        digests = []
        for batching in (False, True):
            factory = with_batching() if batching else None
            sim, reps, clients = build_minbft_system(
                f=1, n_clients=2, ops_per_client=5, app="bank", seed=4,
                replica_factory=factory,
            )
            sim.run(until=8000.0)
            n = len(reps)
            check_replication(
                sim.trace, range(n),
                expected_ops={n: 5, n + 1: 5},
            ).assert_ok()
            digests.append(reps[0].app.digest())
        assert digests[0] == digests[1]


class TestWindowing:
    def test_window_stall_and_resume(self):
        """Proposals stall at the window edge and resume on execution
        progress; a batch deadline firing against a full window re-queues
        the requests instead of dropping them."""
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=4, ops_per_client=6, seed=21,
            replica_factory=with_batching(
                window_size=1, batch_policy="adaptive"
            ),
            client_options=dict(max_outstanding=4),
        )
        sim.run(until=8000.0)
        n = len(reps)
        check_replication(
            sim.trace, range(n),
            expected_ops={n + c: 6 for c in range(4)},
        ).assert_ok()
        primary = reps[0]
        assert primary.proposal_stalls > 0
        assert not primary._batch_stalled  # drained at quiescence, not wedged
        assert all(r.commits_executed == 24 for r in reps)

    def test_window_smaller_than_checkpoint_interval(self):
        """The window base anchors on the execution frontier as well as the
        stable checkpoint, so ``window < checkpoint_interval`` cannot
        deadlock (classic checkpoint-anchored watermarks require the
        opposite inequality)."""
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=2, ops_per_client=8, seed=22,
            replica_factory=with_batching(
                window_size=2, checkpoint_interval=6, batch_policy="adaptive"
            ),
            client_options=dict(max_outstanding=4),
        )
        sim.run(until=8000.0)
        n = len(reps)
        check_replication(
            sim.trace, range(n),
            expected_ops={n: 8, n + 1: 8},
        ).assert_ok()
        assert all(r.commits_executed == 16 for r in reps)

    def test_batch_spanning_view_change(self):
        """Batch slots proposed by the old primary but not yet executed are
        carried through the view change and execute exactly once."""
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=3, ops_per_client=5, app="bank", seed=23,
            replica_factory=with_batching(
                window_size=8, checkpoint_interval=4, batch_policy="adaptive"
            ),
            client_options=dict(max_outstanding=2),
            req_timeout=20.0, retry_timeout=60.0,
        )
        # crash with the first batches on the wire and the rest of the
        # workload still unreleased: already-proposed slots commit on the
        # backups' f+1 quorum, everything after must cross the view change
        sim.crash_at(0, 0.6)
        sim.run(until=12000.0)
        n = len(reps)
        check_replication(
            sim.trace, [1, 2],
            expected_ops={n + c: 5 for c in range(3)},
        ).assert_ok()
        assert reps[1].view >= 1
        assert reps[1].app.digest() == reps[2].app.digest()
