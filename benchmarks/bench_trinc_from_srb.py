"""T1 — Theorem 1: SRB implements the TrInc interface.

Regenerates the theorem's two obligations quantitatively: completeness
(every correctly produced attestation eventually validates at every
process) and soundness (duplicate-counter/forged attestations validate
nowhere), under adversarial host behavior and a sweep of system sizes.
Also reports the broadcast cost per attestation — the "price" of emulating
the hardware in software the paper's question implies.
"""

from __future__ import annotations

from _bench_util import report

from repro.analysis import format_table
from repro.core.srb_oracle import SRBOracle
from repro.core.trinc_from_srb import SRBTrincVerifier, SRBTrinket
from repro.sim import Process, Simulation


class Node(Process):
    def __init__(self, n):
        super().__init__()
        self.verifier = SRBTrincVerifier(n)


def run_one(n, attestations, byz_duplicates, seed):
    procs = [Node(n) for _ in range(n)]
    oracle = SRBOracle(seed=seed)
    sim = Simulation(procs, seed=seed)
    oracle.bind(sim)
    for p in range(n):
        oracle.subscribe(p, procs[p].verifier.on_deliver)
    trinkets = [SRBTrinket(oracle.sender_handle(p)) for p in range(n)]
    good, bad = [], []

    def drive():
        c = 0
        for i in range(attestations):
            c += 1 + (i % 3)  # skips allowed: counters need not be consecutive
            good.append(trinkets[0].attest(c, f"m{i}"))
        for i in range(byz_duplicates):
            # a Byzantine host replays an already-used counter value
            victim = good[i % len(good)]
            bad.append(trinkets[0].attest_unchecked(victim.counter, f"dup{i}"))

    sim.at(0.1, drive)
    sim.run_to_quiescence()
    complete = sum(
        1 for a in good
        if all(procs[p].verifier.check_attestation(a, 0) for p in range(n))
    )
    unsound = sum(
        1 for a in bad
        if any(procs[p].verifier.check_attestation(a, 0) for p in range(n))
    )
    return {
        "n": n,
        "good": len(good),
        "complete": complete,
        "dups": len(bad),
        "validated_dups": unsound,
        "broadcasts": oracle.broadcasts,
    }


def test_trinc_from_srb(once):
    def experiment():
        rows = []
        for n in (2, 4, 8):
            rows.append(run_one(n, attestations=20, byz_duplicates=10, seed=n))
        return rows

    rows = once(experiment)
    report(format_table(
        ["n", "attestations", "validated everywhere", "byz duplicates",
         "duplicates accepted anywhere", "SRB broadcasts"],
        [[r["n"], r["good"], r["complete"], r["dups"], r["validated_dups"],
          r["broadcasts"]] for r in rows],
        title="T1: TrInc interface over SRB — completeness & soundness",
    ))
    assert all(r["complete"] == r["good"] for r in rows)
    assert all(r["validated_dups"] == 0 for r in rows)
