"""C3 — Algorithm 1 (SRB from unidirectional rounds), §4.2 Claim 2.

Regenerates the construction's behavior across the (n, t) range and under
faults: deliveries, per-message latency (virtual time), and shared-memory
operation cost. The paper proves correctness at n ≥ 2t+1; the series here
show the construction working exactly down to that bound, with crash and
equivocating-sender fault injection.
"""

from __future__ import annotations

from _bench_util import report

from repro.analysis import format_table
from repro.core.srb import check_srb
from repro.core.srb_from_uni import SRBFromUnidirectional, build_sm_srb_system, val_domain


def run_config(n, t, n_messages=3, seed=0, crash=False):
    sim, procs, _ = build_sm_srb_system(n=n, t=t, sender=0, seed=seed)
    sent_at = {}
    for i in range(n_messages):
        when = 0.5 + 0.4 * i
        sent_at[i + 1] = when
        sim.at(when, lambda i=i: procs[0].broadcast(f"msg-{i}"))
    if crash:
        sim.crash_at(n - 1, 1.0)
    sim.run(until=900.0)
    correct = list(range(n - 1)) if crash else list(range(n))
    rep = check_srb(sim.trace, 0, correct)
    rep.assert_ok()
    last_delivery = {}
    for d in rep.deliveries:
        last_delivery[d.seq] = max(last_delivery.get(d.seq, 0.0), d.time)
    latencies = [last_delivery[k] - sent_at[k] for k in sent_at if k in last_delivery]
    return {
        "n": n,
        "t": t,
        "faults": "1 crash" if crash else "none",
        "delivered": len(rep.deliveries),
        "mean_latency": sum(latencies) / len(latencies),
        "sm_ops": sim.memory.ops_linearized,
    }


def test_srb_from_uni_sweep(once):
    def experiment():
        rows = []
        for n, t in [(3, 1), (5, 2), (7, 3), (9, 4)]:
            rows.append(run_config(n, t, seed=1))
        rows.append(run_config(5, 2, seed=2, crash=True))
        return rows

    rows = once(experiment)
    report(format_table(
        ["n", "t", "faults", "deliveries", "mean latency (virt)", "SM ops"],
        [[r["n"], r["t"], r["faults"], r["delivered"],
          f"{r['mean_latency']:.2f}", r["sm_ops"]] for r in rows],
        title="C3: SRB from unidirectional rounds (Algorithm 1), 3 messages per run",
    ))
    assert all(r["delivered"] > 0 for r in rows)


def test_srb_from_uni_equivocating_sender(once):
    """Safety under a double-signing sender: nobody splits, ever."""

    class EquivSender(SRBFromUnidirectional):
        def equivocate(self, m1, m2):
            s1 = self.signer.sign(val_domain(self.pid, 1, m1))
            s2 = self.signer.sign(val_domain(self.pid, 1, m2))
            self.ctx.record("bcast", seq=1, value=m1)
            self.ctx.record("bcast", seq=1, value=m2)
            self.rounds.post(("VAL", 1, m1, s1))
            self.rounds.post(("VAL", 1, m2, s2))

    def factory(pid, transport, scheme, signer):
        cls = EquivSender if pid == 0 else SRBFromUnidirectional
        return cls(transport, 0, 2, scheme, signer)

    def experiment():
        rows = []
        for seed in range(5):
            sim, procs, _ = build_sm_srb_system(
                n=5, t=2, sender=0, seed=seed, process_factory=factory
            )
            sim.declare_byzantine(0)
            sim.at(0.5, lambda: procs[0].equivocate("good", "evil"))
            sim.run(until=600.0)
            rep = check_srb(sim.trace, 0, [1, 2, 3, 4], sender_correct=False)
            rows.append([seed, len(rep.deliveries),
                         len(rep.agreement_violations), "SAFE" if not
                         rep.agreement_violations else "VIOLATED"])
        return rows

    rows = once(experiment)
    report(format_table(
        ["seed", "deliveries", "agreement violations", "verdict"],
        rows,
        title="C3b: Algorithm 1 vs double-signing Byzantine sender (n=5, t=2)",
    ))
    assert all(r[3] == "SAFE" for r in rows)
