"""Q4 — ablation: MinBFT checkpointing / log garbage collection.

MinBFT's n = 2f+1 view change works because VIEW-CHANGE messages carry
tamper-evident *full* sent logs — which grow without bound unless
checkpoints garbage-collect them. This ablation quantifies the design
choice DESIGN.md calls out: sweep the checkpoint interval and measure the
live log size a view change would have to ship, plus the GC volume, on a
fixed workload.
"""

from __future__ import annotations

from _bench_util import report

from repro.analysis import format_table
from repro.consensus import build_minbft_system, build_pbft_system, check_replication
from repro.consensus.minbft import MinBFTReplica
from repro.consensus.pbft import PBFTReplica


def run_one(interval, ops, seed, crash_primary=False):
    def factory(pid, **kwargs):
        return MinBFTReplica(checkpoint_interval=interval, **kwargs)

    sim, reps, clients = build_minbft_system(
        f=1, n_clients=1, ops_per_client=ops, seed=seed,
        replica_factory=factory, req_timeout=20.0, retry_timeout=60.0,
    )
    if crash_primary:
        sim.crash_at(0, 3.0)
    sim.run(until=20000.0)
    n = len(reps)
    correct = list(range(1 if crash_primary else 0, n))
    check_replication(sim.trace, correct, expected_ops={n: ops}).assert_ok()
    live = [len(r.sent_log) for r in (reps[1:] if crash_primary else reps)]
    gced = [r.log_entries_gced for r in (reps[1:] if crash_primary else reps)]
    stable = [r.stable_seq for r in (reps[1:] if crash_primary else reps)]
    return {
        "interval": interval if interval else "off",
        "ops": ops,
        "live_log": max(live),
        "gced": max(gced),
        "stable": min(stable),
        "crash": crash_primary,
    }


def test_checkpoint_interval_ablation(once):
    def experiment():
        rows = []
        for interval in (0, 2, 8):
            r = run_one(interval, ops=30, seed=interval + 1)
            rows.append([r["interval"], r["ops"], r["stable"], r["live_log"],
                         r["gced"]])
        return rows

    rows = once(experiment)
    report(format_table(
        ["checkpoint interval", "requests", "stable seq", "max live log "
         "(VC msg size, entries)", "entries GC'd"],
        rows,
        title="Q4a: checkpoint-interval ablation — what a VIEW-CHANGE would "
              "have to ship (f=1, 30 requests)",
    ))
    off, tight, loose = rows[0][3], rows[1][3], rows[2][3]
    assert tight < off and loose < off  # GC keeps logs bounded

    def crash_experiment():
        rows = []
        for interval in (0, 2):
            r = run_one(interval, ops=12, seed=9, crash_primary=True)
            rows.append([r["interval"], "primary crash",
                         r["stable"], r["live_log"], "recovered"])
        return rows

    # reuse the same benchmark timing slot is not allowed; run inline
    rows2 = crash_experiment()
    report(format_table(
        ["checkpoint interval", "fault", "stable seq", "max live log",
         "outcome"],
        rows2,
        title="Q4b: view change still succeeds from garbage-collected logs",
    ))


def test_pbft_checkpoint_parity(once):
    """Q4d: the same GC story on the PBFT baseline (2f+1 checkpoint certs)."""

    def run(interval, seed):
        def factory(pid, **kwargs):
            return PBFTReplica(checkpoint_interval=interval, **kwargs)

        sim, reps, clients = build_pbft_system(
            f=1, n_clients=1, ops_per_client=20, seed=seed,
            replica_factory=factory if interval else None,
        )
        sim.run(until=20000.0)
        n = len(reps)
        check_replication(sim.trace, range(n), expected_ops={n: 20}).assert_ok()
        return [
            interval if interval else "off",
            min(r.stable_seq for r in reps),
            max(len(r._prepared_certs) + len(r._accepted_pp) for r in reps),
            max(r.log_entries_gced for r in reps),
        ]

    def experiment():
        return [run(0, seed=21), run(4, seed=22)]

    rows = once(experiment)
    report(format_table(
        ["checkpoint interval", "stable seq", "live per-slot state (entries)",
         "entries GC'd"],
        rows,
        title="Q4d: PBFT checkpoint parity — per-slot state bounded by GC "
              "(f=1, 20 requests)",
    ))
    assert rows[1][3] > 0 and rows[1][2] < rows[0][2]


def test_batching_ablation(once):
    """Q4c: request batching — slots and messages under concurrent clients."""

    def run(batching, n_clients=6, ops=4, seed=11):
        factory = None
        if batching:
            def factory(pid, **kwargs):
                return MinBFTReplica(batching=True, **kwargs)
        sim, reps, clients = build_minbft_system(
            f=1, n_clients=n_clients, ops_per_client=ops, seed=seed,
            replica_factory=factory,
        )
        sim.run(until=10000.0)
        n = len(reps)
        check_replication(
            sim.trace, range(n),
            expected_ops={n + c: ops for c in range(n_clients)},
        ).assert_ok()
        total = n_clients * ops
        slots = max(r.exec_next - 1 for r in reps)
        lat = sum(sum(c.latencies) for c in clients) / total
        return [
            "on" if batching else "off", total, slots,
            sim.network.messages_sent, f"{lat:.2f}",
        ]

    def experiment():
        return [run(False), run(True)]

    rows = once(experiment)
    report(format_table(
        ["batching", "requests", "slots used", "messages", "mean latency"],
        rows,
        title="Q4c: batching ablation — 6 concurrent clients, f=1",
    ))
    off, on = rows
    assert on[2] < off[2]   # fewer slots
    assert on[3] < off[3]   # fewer messages
