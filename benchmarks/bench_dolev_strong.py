"""A4 — Byzantine broadcast under bidirectional rounds (Dolev–Strong).

The witness that bidirectionality tops the lattice: unconditional
termination for ANY f < n, in exactly f+1 rounds. Series: rounds-to-commit
and message cost across f, under honest, silent, and equivocating senders.
"""

from __future__ import annotations

from _bench_util import report

from repro.analysis import format_table
from repro.broadcast import BOT, DolevStrong, check_byzantine_broadcast
from repro.broadcast.dolev_strong import ds_domain
from repro.core.rounds import LockStepRoundTransport
from repro.crypto import SignatureScheme
from repro.sim import LockStepSynchronous, Simulation


class EquivDS(DolevStrong):
    def on_round_start(self):
        half = self.ctx.n // 2
        for dst in range(self.ctx.n):
            v = "A" if dst < half else "B"
            sig = self.signer.sign(ds_domain(self.sender, v, ()))
            self.ctx.send(dst, ("__round__", 1, ((v, ((self.sender, sig),)),)))
        self.rounds.begin_round(())


def run_one(n, f, sender_kind, seed):
    scheme = SignatureScheme(n, seed=seed)
    procs = []
    for p in range(n):
        cls = EquivDS if (p == 0 and sender_kind == "equivocating") else DolevStrong
        procs.append(
            cls(LockStepRoundTransport(period=2.0), 0, f, scheme,
                scheme.signer(p), my_input="V" if p == 0 else None)
        )
    sim = Simulation(procs, LockStepSynchronous(delta=1.0), seed=seed)
    sender_correct = sender_kind == "honest"
    if not sender_correct:
        sim.declare_byzantine(0)
    if sender_kind == "silent":
        sim.crash(0)
    sim.run(until=2.0 * (f + 3) + 5.0)
    correct = list(range(0 if sender_correct else 1, n))
    rep = check_byzantine_broadcast(sim.trace, 0, "V", correct, sender_correct)
    rep.assert_ok()
    decide_times = [d.time for d in sim.trace.decisions() if d.pid in correct]
    rounds_used = max(decide_times) / 2.0
    committed = next(iter(rep.commits.values()))
    value = "⊥" if committed is BOT else str(committed)
    return [n, f, sender_kind, f"{rounds_used:.0f} (= f+2 boundaries)",
            value, sim.network.messages_sent]


def test_dolev_strong(once):
    def experiment():
        rows = []
        for n, f in [(3, 1), (4, 1), (5, 2), (7, 3)]:
            rows.append(run_one(n, f, "honest", seed=n))
        rows.append(run_one(4, 1, "silent", seed=41))
        rows.append(run_one(4, 1, "equivocating", seed=42))
        rows.append(run_one(5, 2, "equivocating", seed=52))
        return rows

    rows = once(experiment)
    report(format_table(
        ["n", "f", "sender", "commit boundary", "agreed value", "messages"],
        rows,
        title="A4: Dolev–Strong Byzantine broadcast under lock-step rounds "
              "(terminates in f+1 rounds for any f < n)",
    ))
    # equivocation at f>=1 is detected: the agreed value is ⊥
    assert rows[-1][4] == "⊥" and rows[-2][4] == "⊥"
    # honest runs commit the sender's value
    assert all(r[4] == "V" for r in rows[:4])
