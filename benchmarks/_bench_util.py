"""Shared helpers for the benchmark/experiment harnesses.

pytest captures stdout at the file-descriptor level, so experiment tables
are buffered here and flushed by the ``pytest_terminal_summary`` hook in
``benchmarks/conftest.py`` — they always appear at the end of the bench
log, after pytest-benchmark's timing table.
"""

from __future__ import annotations

REPORTS: list[str] = []


def report(text: str) -> None:
    """Queue experiment rows for the end-of-session summary."""
    REPORTS.append(text)
