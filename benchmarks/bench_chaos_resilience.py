"""R1 — chaos resilience: protocol × fault-schedule × seed sweep.

Runs the real protocol stacks (Algorithm-1 SRB over message-passing
rounds with a retransmission layer, MinBFT replication) under seeded
composed faults — loss, duplication, stragglers, burst outages, transient
partitions, crash-recovery restarts — and audits every run with the
existing safety checkers. The table aggregates per protocol: runs, fault
volume actually injected, recovery events, and violations (which must be
zero for the correct stacks and nonzero for the deliberately broken SRB
variant that validates the harness's detection power).

Any failing run prints its seed and generated schedule; replay with
``repro.faults.chaos.replay(protocol, seed)``.
"""

from __future__ import annotations

from _bench_util import report

from repro.analysis import format_table
from repro.faults.chaos import format_failures, run_chaos

SEEDS = range(20)
PROTOCOLS = ("srb-uni", "minbft", "srb-uni-broken")


def summarize(protocol, results):
    bad = [r for r in results if not r.ok]
    return {
        "protocol": protocol,
        "runs": len(results),
        "dropped": sum(r.stats["dropped"] for r in results),
        "duplicates": sum(r.stats["duplicates"] for r in results),
        "restarts": sum(r.stats["restarts"] for r in results),
        "failing_runs": len(bad),
        "violations": sum(len(r.violations) for r in results),
        "failing_seeds": sorted(r.seed for r in bad),
    }


def test_chaos_resilience_sweep(once):
    def experiment():
        rows, failures = [], []
        for protocol in PROTOCOLS:
            results = [run_chaos(protocol, seed) for seed in SEEDS]
            rows.append(summarize(protocol, results))
            failures.extend(r for r in results if not r.ok)
        return rows, failures

    rows, failures = once(experiment)
    by_proto = {r["protocol"]: r for r in rows}
    # the correct stacks survive every schedule...
    for proto in ("srb-uni", "minbft"):
        assert by_proto[proto]["failing_runs"] == 0, format_failures(failures)
        assert by_proto[proto]["dropped"] > 0  # faults were really injected
        assert by_proto[proto]["restarts"] > 0
    # ...and the harness catches the planted bug, with seeds to replay
    assert by_proto["srb-uni-broken"]["failing_runs"] > 0
    report(format_table(
        ["protocol", "runs", "dropped", "dups", "restarts",
         "failing runs", "violations", "failing seeds"],
        [[r["protocol"], r["runs"], r["dropped"], r["duplicates"],
          r["restarts"], r["failing_runs"], r["violations"],
          ",".join(map(str, r["failing_seeds"])) or "-"] for r in rows],
        title="R1: chaos sweep, 20 seeded fault schedules per protocol "
              "(loss + dup + bursts + partitions + crash-recovery)",
    ))
