"""R10 — Byzantine campaign: attack matrix, conviction forensics, audit cost.

Three arms:

1. **Attack matrix** — every protocol-aware attack in
   :data:`repro.faults.attacks.ATTACKS` against its target stack at the
   minimal replication factor, over seeded fault-free schedules. With
   intact trusted hardware every cell must come back safe, live, and
   conviction-free, and every cell must actually land its strikes (a
   green cell that never attacked proves nothing).
2. **Compromised-hardware soak** — the cloned-trinket/extracted-key
   TraitorReplica splits MinBFT at n = 2f+1, per seed: the benchmark
   measures *detection latency* (sim time from the hardware equivocation
   being minted to the accountability checker convicting the culprit),
   *conviction rate* (every seed must convict exactly the culprit with a
   proof that replays against the public verifier), and whether the
   surviving rump group finished the workload clean.
3. **Audit overhead** — the same clean MinBFT run with and without the
   streaming :class:`~repro.consensus.forensics.AccountabilityChecker`
   attached: wall-clock ratio and UIs audited. The checker rides the
   trace stream, so its cost must stay a small constant factor.

Writes ``BENCH_byzantine.json`` at the repo root (override with ``--out``).

Runs two ways::

    python -m pytest benchmarks/bench_byzantine.py --benchmark-only
    python benchmarks/bench_byzantine.py --quick   # CI smoke
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.analysis import format_table
from repro.consensus.forensics import AccountabilityChecker, verify_proof
from repro.consensus.harness import build_minbft_system
from repro.crypto import reset_crypto_caches
from repro.faults.attacks import ATTACKS
from repro.faults.chaos import run_attack, run_compromised_minbft_soak

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_byzantine.json"

FULL = dict(matrix_seeds=3, soak_seeds=5, overhead_ops=40)
QUICK = dict(matrix_seeds=1, soak_seeds=2, overhead_ops=12)

#: acceptance bars (shared by full and quick grids)
BARS = dict(
    conviction_rate=1.0,      # every compromised seed convicts the culprit
    proof_replay_rate=1.0,    # every proof verifies against a fresh verifier
    false_convictions=0,      # intact hardware: nobody to convict
    audit_overhead_max=2.0,   # streaming audit <= 2x wall clock
)


def run_matrix(seeds: int) -> list[dict[str, Any]]:
    rows = []
    for name in sorted(ATTACKS):
        spec = ATTACKS[name]
        cells = [run_attack(name, seed=s) for s in range(seeds)]
        convictions = sum(
            len(c.stats["byzantine"].get("forensics", {}).get("convicted", []))
            for c in cells
        )
        rows.append({
            "attack": name,
            "protocol": spec.protocol,
            "runs": len(cells),
            "ok": sum(c.ok for c in cells),
            "strikes": sum(c.stats["byzantine"]["strikes"] for c in cells),
            "convictions": convictions,
        })
    return rows


def run_soak_arm(seeds: int) -> list[dict[str, Any]]:
    rows = []
    for seed in range(seeds):
        s = run_compromised_minbft_soak(seed=seed)
        proof = s["proof"]
        rows.append({
            "seed": seed,
            "violated": bool(s["online_violations"]),
            "convicted": s["convicted"],
            "detection_latency": s["detected_at"].get(0),
            "proof_replays": bool(proof) and verify_proof(
                proof, s["verifier"]
            ),
            "recovered": s["report"].ok,
            "uis_checked": s["forensics"]["uis_checked"],
        })
    return rows


def _timed_clean_run(ops: int, audit: bool) -> dict[str, Any]:
    reset_crypto_caches()
    sim, replicas, clients = build_minbft_system(
        f=1, n_clients=2, ops_per_client=ops, seed=0
    )
    checker = None
    if audit:
        checker = AccountabilityChecker(replicas[1].verifier)
        sim.attach_observer(checker)
    t0 = time.perf_counter()
    sim.run(until=3000.0)
    wall = time.perf_counter() - t0
    executed = replicas[0].commits_executed
    assert executed >= ops * len(clients), "clean run did not finish"
    if checker is not None:
        assert not checker.convicted, "false conviction on a clean run"
    return {
        "wall": wall,
        "executed": executed,
        "uis_checked": checker.stats()["uis_checked"] if checker else 0,
    }


def run_overhead_arm(ops: int) -> dict[str, Any]:
    _timed_clean_run(ops, audit=False)  # warm caches/JIT-ish effects
    bare = _timed_clean_run(ops, audit=False)
    audited = _timed_clean_run(ops, audit=True)
    return {
        "ops": ops,
        "bare_wall": bare["wall"],
        "audited_wall": audited["wall"],
        "overhead": audited["wall"] / bare["wall"],
        "uis_checked": audited["uis_checked"],
    }


def run_byzantine_bench(
    quick: bool = False, out: Optional[Path] = DEFAULT_OUT
) -> dict[str, Any]:
    grid = QUICK if quick else FULL
    matrix = run_matrix(grid["matrix_seeds"])
    soak = run_soak_arm(grid["soak_seeds"])
    overhead = run_overhead_arm(grid["overhead_ops"])

    latencies = [r["detection_latency"] for r in soak]
    results = {
        "quick": quick,
        "bars": BARS,
        "matrix": matrix,
        "soak": soak,
        "overhead": overhead,
        "headline": {
            "attack_cells": sum(r["runs"] for r in matrix),
            "cells_ok": sum(r["ok"] for r in matrix),
            "false_convictions": sum(r["convictions"] for r in matrix),
            "conviction_rate": (
                sum(r["convicted"] == [0] for r in soak) / len(soak)
            ),
            "proof_replay_rate": (
                sum(r["proof_replays"] for r in soak) / len(soak)
            ),
            "recovery_rate": sum(r["recovered"] for r in soak) / len(soak),
            "detection_latency_mean": sum(latencies) / len(latencies),
            "detection_latency_max": max(latencies),
            "audit_overhead": overhead["overhead"],
        },
    }

    h = results["headline"]
    assert h["cells_ok"] == h["attack_cells"], (
        f"attack matrix not clean: {h['cells_ok']}/{h['attack_cells']}"
    )
    assert all(r["strikes"] > 0 for r in matrix), "a vacuous attack cell"
    assert h["false_convictions"] == BARS["false_convictions"]
    assert h["conviction_rate"] >= BARS["conviction_rate"]
    assert h["proof_replay_rate"] >= BARS["proof_replay_rate"]
    assert h["recovery_rate"] == 1.0, "a rump group failed to recover"
    assert h["audit_overhead"] <= BARS["audit_overhead_max"], (
        f"streaming audit cost {h['audit_overhead']:.2f}x, "
        f"bar {BARS['audit_overhead_max']:.1f}x"
    )

    if out is not None:
        out.write_text(json.dumps(results, indent=2, sort_keys=False))
    return results


def render(results: dict[str, Any]) -> str:
    rows = [
        [r["attack"], r["protocol"], r["runs"],
         f"{r['ok']}/{r['runs']}", r["strikes"], r["convictions"]]
        for r in results["matrix"]
    ]
    table = format_table(
        ["attack", "protocol", "runs", "ok", "strikes", "convictions"],
        rows,
        title="R10: attack matrix under intact trusted hardware "
              "(every cell safe + live + conviction-free)",
    )
    h = results["headline"]
    o = results["overhead"]
    return (
        table
        + f"\n\ncompromised-hardware soak ({len(results['soak'])} seeds): "
          f"conviction rate {h['conviction_rate']:.0%}, proof replay "
          f"{h['proof_replay_rate']:.0%}, recovery {h['recovery_rate']:.0%}, "
          f"detection latency mean {h['detection_latency_mean']:.2f}s / "
          f"max {h['detection_latency_max']:.2f}s (sim time)"
        + f"\naudit overhead: {o['overhead']:.2f}x wall clock "
          f"({o['uis_checked']} UIs audited, bar "
          f"{results['bars']['audit_overhead_max']:.1f}x)"
    )


def test_byzantine_bench(once, quick):
    from _bench_util import report

    results = once(run_byzantine_bench, quick)
    report(render(results))


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shrunken seed grid (CI)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    results = run_byzantine_bench(quick=args.quick, out=args.out)
    print(render(results))
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
