"""A1 — very weak agreement: solvable with unidirectionality at n > f,
impossible with reliable broadcast at n ≤ 2f.

Two series regenerate the draft's separation:

1. the one-round protocol over shared-memory unidirectional rounds, swept
   over n with up to n-1 crash faults (the n > f bound in action);
2. the five-world impossibility execution for reliable broadcast at
   n = 2f — the run *must* produce the world-5 agreement violation and the
   full indistinguishability chain.
"""

from __future__ import annotations

from _bench_util import report

from repro.agreement import VERY_WEAK, VeryWeakAgreement, check_agreement, run_vwa_rb_impossibility
from repro.analysis import format_table
from repro.broadcast.definitions import BOT
from repro.core.rounds import SharedMemoryRoundTransport
from repro.core.uni_from_sm import build_objects_for
from repro.sim import ReliableAsynchronous, Simulation


def run_uni_vwa(n, crashes, unanimous, seed):
    inputs = {p: "v" for p in range(n)} if unanimous else {
        p: f"v{p % 2}" for p in range(n)
    }
    procs = [VeryWeakAgreement(SharedMemoryRoundTransport(), inputs[p])
             for p in range(n)]
    sim = Simulation(procs, ReliableAsynchronous(0.01, 1.0), seed=seed)
    for obj in build_objects_for("append-log", n):
        sim.memory.register(obj)
    for i in range(crashes):
        sim.crash_at(n - 1 - i, 0.2 + 0.1 * i)
    sim.run(until=400.0)
    correct = list(range(n - crashes))
    rep = check_agreement(sim.trace, VERY_WEAK, inputs, correct,
                          all_correct=crashes == 0)
    rep.assert_ok()
    bots = sum(1 for v in rep.commits.values() if v is BOT)
    return [n, crashes, "same" if unanimous else "mixed",
            len(rep.commits), bots, "ok"]


def test_vwa_over_unidirectionality(once):
    def experiment():
        rows = []
        for n in (2, 3, 5, 7):
            rows.append(run_uni_vwa(n, crashes=0, unanimous=True, seed=n))
            rows.append(run_uni_vwa(n, crashes=0, unanimous=False, seed=n + 1))
            rows.append(run_uni_vwa(n, crashes=n - 1, unanimous=True, seed=n + 2))
        return rows

    rows = once(experiment)
    report(format_table(
        ["n", "crashes (f=n-1 tolerated!)", "inputs", "commits", "⊥ commits",
         "agreement"],
        rows,
        title="A1a: very weak agreement from one unidirectional round, n > f",
    ))


def test_vwa_rb_impossibility_worlds(once):
    def experiment():
        rows = []
        for f in (2, 3):
            out = run_vwa_rb_impossibility(f=f, seed=f)
            out.assert_holds()
            w5 = out.worlds[5].report
            rows.append([
                2 * f, f,
                "P→0, Q→1" if out.world5_agreement_violated else "none",
                len(w5.agreement_violations),
                "yes" if (out.ind_p_w2_w5 and out.ind_q_w4_w5) else "NO",
                "demonstrated",
            ])
        return rows

    rows = once(experiment)
    report(format_table(
        ["n (=2f)", "f", "world-5 split", "agreement violations",
         "indistinguishability chain", "impossibility"],
        rows,
        title="A1b: very weak agreement is NOT solvable with reliable broadcast "
              "at n ≤ 2f (five-world execution)",
    ))
