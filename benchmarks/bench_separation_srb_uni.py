"""C2 — §4.1 Claim 1: SRB cannot implement unidirectionality (n > 2f, f > 1).

Executes the three proof scenarios for a sweep of (n, f) and reports, per
configuration: whether the indistinguishability chain held, and the number
of unidirectionality violations produced in Scenario 3. A companion series
runs the same candidate in the f = 1 regime where the separation does NOT
apply (Appendix B rescues it there) — the crossover the classification
predicts.
"""

from __future__ import annotations

from _bench_util import report

from repro.analysis import format_table
from repro.core.separations import run_srb_separation


def test_separation_sweep(once):
    def experiment():
        rows = []
        for n, f in [(6, 2), (7, 2), (8, 3), (9, 3), (11, 4)]:
            out = run_srb_separation(n=n, f=f, seed=0)
            rows.append([
                n, f,
                "yes" if out.indistinguishable_q else "NO",
                "yes" if out.indistinguishable_c1 and out.indistinguishable_c2 else "NO",
                len(out.directionality3.unidirectional_violations),
                "holds" if out.separation_holds else "FAILED",
            ])
            out.assert_holds()
        return rows

    rows = once(experiment)
    report(format_table(
        ["n", "f", "Q views equal", "C1/C2 views equal",
         "scenario-3 uni violations", "separation"],
        rows,
        title="C2: SRB cannot implement unidirectionality (three-scenario argument)",
    ))


def test_f1_corner_is_the_boundary(once):
    """At f = 1 the same adversarial structure cannot violate the corner-case
    construction — run the Appendix-B transport through the hostile schedule."""
    from repro.core.directionality import check_directionality
    from repro.core.rounds import RoundProcess
    from repro.core.srb_oracle import SRBOracle
    from repro.core.uni_from_rb_corner import CornerCaseRoundTransport
    from repro.crypto import SignatureScheme
    from repro.sim import Simulation

    def experiment():
        rows = []
        for n in (3, 4, 5):
            scheme = SignatureScheme(n, seed=n)
            # most hostile f=1-compatible schedule: one pair fully cut
            oracle = SRBOracle(
                policy=lambda s, r, k, now: None if {s, r} == {0, 1} else 0.05,
                seed=n,
            )

            class P(RoundProcess):
                def on_round_start(self):
                    self.rounds.begin_round(("v", self.pid), label="r1")

            procs = [
                P(CornerCaseRoundTransport(oracle, scheme, scheme.signer(p)))
                for p in range(n)
            ]
            sim = Simulation(procs, seed=n)
            oracle.bind(sim)
            sim.run(until=150.0)
            rep = check_directionality(sim.trace, range(n))
            ends = len(sim.trace.events("round_end"))
            rows.append([n, 1, ends, rep.classify()])
            rep.assert_unidirectional()
            assert ends == n
        return rows

    rows = once(experiment)
    report(format_table(
        ["n", "f", "rounds completed", "observed directionality"],
        rows,
        title="C2b/C4: the f=1 boundary — RB *does* implement unidirectionality "
              "(Appendix B construction under a cut pair)",
    ))
