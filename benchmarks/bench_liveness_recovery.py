"""R3 — post-GST recovery: fixed vs adaptive timeouts under chaos.

Every chaos schedule now carries a GST: full-repertoire network faults
before it, ``delta``-bounded synchrony after. What the timeout policy
controls is how fast the system *notices* the calm. Legacy fixed timers
keep waiting at the configured constants (replica view-change timer 25,
client retry 40) no matter what the network does; the Jacobson/Karels
adaptive policy has been measuring request round trips all along and
collapses toward ``margin * rtt`` as soon as the network settles.

The discriminating scenario is a primary crash just before GST: the
retransmission layer already absorbs ordinary loss, so post-GST progress
is gated purely by the backups' view-change timers. Each cell runs one
seeded network-chaos schedule (no scheduled crashes — the experiment
plants its own), kills the view-0 primary 10 s before GST, and measures
the time from GST to the first client request completion at-or-after GST:
the moment the system demonstrably recovered. Pass ``--quick`` for the
3-seed CI smoke grid.
"""

from __future__ import annotations

from statistics import mean, median

from _bench_util import report

from repro.analysis import format_table
from repro.consensus import build_minbft_system
from repro.faults.chaos import DEFAULT_CHANNEL, make_schedule
from repro.faults.timeouts import make_policy_factory

N_CLIENTS = 2
OPS = 200  # long enough that work is always pending when the primary dies
F = 1


def run_cell(seed, timeouts, horizon=600.0):
    # network chaos only: crashes are planted by the experiment itself so
    # that every run faces the same post-GST view-change problem
    schedule = make_schedule(seed, crashable=[], horizon=horizon)
    n = 2 * F + 1
    policy = (
        make_policy_factory("adaptive", base=25.0, min_timeout=2.0,
                            max_timeout=120.0)
        if timeouts == "adaptive"
        else None
    )
    sim, replicas, clients = build_minbft_system(
        f=F, n_clients=N_CLIENTS, ops_per_client=OPS, seed=schedule.seed,
        adversary=schedule.make_adversary(n + N_CLIENTS),
        req_timeout=25.0, retry_timeout=40.0,
        reliable=dict(DEFAULT_CHANNEL), timeout_policy=policy,
    )
    crash_t = schedule.gst - 10.0
    sim.crash_at(0, crash_t)  # the view-0 primary dies just before the calm
    sim.run(until=schedule.horizon)
    dones = [
        ev.time for ev in sim.trace.events("custom")
        if ev.field("event") == "request_done"
    ]
    post_gst = [t for t in dones if t >= schedule.gst]
    return {
        "recovery": (min(post_gst) - schedule.gst) if post_gst else None,
        "completed": len(dones),
        "gst": schedule.gst,
    }


def test_adaptive_beats_fixed_post_gst(once, quick):
    seeds = range(3) if quick else range(10)

    def experiment():
        grid = {}
        for arm in ("fixed", "adaptive"):
            grid[arm] = [run_cell(seed, arm) for seed in seeds]
        return grid

    grid = once(experiment)
    rows = []
    recov = {}
    for arm in ("fixed", "adaptive"):
        cells = grid[arm]
        rec = [c["recovery"] for c in cells if c["recovery"] is not None]
        assert len(rec) == len(cells), f"{arm}: a run never recovered"
        assert all(c["completed"] > 0 for c in cells)
        recov[arm] = rec
        rows.append([
            arm, len(cells),
            f"{mean(rec):.1f}", f"{median(rec):.1f}", f"{max(rec):.1f}",
            sum(c["completed"] for c in cells),
        ])
    report(format_table(
        ["timeout policy", "runs", "mean recovery (s)", "median", "worst",
         "requests completed"],
        rows,
        title=f"R3: post-GST recovery after a primary crash at GST-10, "
              f"fixed vs adaptive timeouts (MinBFT f={F}, "
              f"{len(list(seeds))} chaos seeds, GST at 240)",
    ))
    # the tentpole claim: measured-RTT view-change timers recover faster
    # once the network calms down than constants tuned for the chaotic phase
    assert mean(recov["adaptive"]) < mean(recov["fixed"])
    assert median(recov["adaptive"]) < median(recov["fixed"])
