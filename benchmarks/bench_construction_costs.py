"""Q2 — the cost of being in the weaker class: construction overheads.

Three series quantify what the classification's arrows cost:

1. **SRB via software (Algorithm 1) vs SRB via trusted logs** — message /
   shared-memory-op count and latency per broadcast, over n. The trusted-
   log SRB is linear in n per message; the L1/L2 construction pays
   quadratic signatures and two extra round trips — the gap is the
   practical content of "shared memory hardware is strictly stronger than
   needed" vs "trusted logs are exactly SRB".
2. **Bracha (no hardware, n ≥ 3f+1) vs trusted-log SRB (any n)** —
   resilience per replica count.
3. **Timed rounds: the 2Δ threshold** — the draft's claim that waiting
   2Δ yields unidirectionality and waiting less does not, measured as the
   fraction of adversarial schedules with unidirectionality violations.
"""

from __future__ import annotations

from _bench_util import report

from repro.analysis import format_table
from repro.broadcast import BrachaRBC, check_reliable_broadcast
from repro.core.directionality import check_directionality
from repro.core.rounds import RoundProcess, TimedRoundTransport
from repro.core.srb import check_srb
from repro.core.srb_from_trinc import SRBFromTrInc
from repro.core.srb_from_uni import build_sm_srb_system
from repro.hardware import TrincAuthority
from repro.sim import ReliableAsynchronous, Simulation


def algorithm1_cost(n, t, seed):
    sim, procs, _ = build_sm_srb_system(n=n, t=t, sender=0, seed=seed)
    sim.at(0.5, lambda: procs[0].broadcast("payload"))
    sim.run(until=900.0)
    rep = check_srb(sim.trace, 0, range(n))
    rep.assert_ok()
    latency = max(d.time for d in rep.deliveries) - 0.5
    return ["Algorithm 1 (uni rounds)", n, t, sim.memory.ops_linearized,
            sim.network.messages_sent, f"{latency:.2f}"]


def trusted_log_cost(n, f, seed):
    auth = TrincAuthority(n, seed=seed)
    procs = [
        SRBFromTrInc(0, n, auth, trinket=auth.trinket(p) if p == 0 else None)
        for p in range(n)
    ]
    sim = Simulation(procs, ReliableAsynchronous(0.01, 1.0), seed=seed)
    sim.at(0.5, lambda: procs[0].broadcast("payload"))
    sim.run_to_quiescence()
    rep = check_srb(sim.trace, 0, range(n))
    rep.assert_ok()
    latency = max(d.time for d in rep.deliveries) - 0.5
    return ["TrInc SRB (hardware)", n, f, 0,
            sim.network.messages_sent, f"{latency:.2f}"]


def test_srb_construction_costs(once):
    def experiment():
        rows = []
        for n, t in [(3, 1), (5, 2), (7, 3)]:
            rows.append(algorithm1_cost(n, t, seed=n))
            rows.append(trusted_log_cost(n, t, seed=n))
        return rows

    rows = once(experiment)
    report(format_table(
        ["construction", "n", "t/f", "SM ops", "messages", "latency (virt)"],
        rows,
        title="Q2a: one SRB broadcast — software construction vs trusted-log "
              "hardware",
    ))
    # per n, hardware SRB is cheaper in transport cost
    for i in range(0, len(rows), 2):
        assert rows[i + 1][4] <= rows[i][4] + rows[i][3]


def test_resilience_per_replica(once):
    """Max f each broadcast family tolerates at a given n."""

    def experiment():
        rows = []
        for n in (2, 3, 4, 7):
            bracha_f = (n - 1) // 3
            rows.append([
                n,
                bracha_f if bracha_f >= 1 else "unusable",
                n - 1,  # trusted-log SRB: sender-correct termination for any f<n
                f"{(n - 1) - (bracha_f if bracha_f else 0)}",
            ])
        # sanity: run Bracha at its bound and trusted-log at f = n-1
        auth = TrincAuthority(2, seed=0)
        procs = [SRBFromTrInc(0, 2, auth, trinket=auth.trinket(0)),
                 SRBFromTrInc(0, 2, auth)]
        sim = Simulation(procs, ReliableAsynchronous(0.01, 0.5), seed=0)
        sim.at(0.1, lambda: procs[0].broadcast("two-node"))
        sim.run_to_quiescence()
        check_srb(sim.trace, 0, range(2)).assert_ok()
        procs4 = [BrachaRBC(0, 4, 1) for _ in range(4)]
        sim4 = Simulation(procs4, ReliableAsynchronous(0.01, 0.5), seed=1)
        sim4.at(0.1, lambda: procs4[0].broadcast("v"))
        sim4.run_to_quiescence()
        check_reliable_broadcast(sim4.trace, 0, "v", range(4), True).assert_ok()
        return rows

    rows = once(experiment)
    report(format_table(
        ["n", "Bracha max f (n>=3f+1)", "trusted-log max f", "hardware gain"],
        rows,
        title="Q2b: resilience per replica count — what non-equivocation buys",
    ))


class _StaggeredChat(RoundProcess):
    def __init__(self, transport, start_jitter):
        super().__init__(transport)
        self.start_jitter = start_jitter

    def on_round_start(self):
        self.ctx.set_timer(self.ctx.rng.uniform(0, self.start_jitter), "go")

    def on_timer(self, tag):
        if tag == "go":
            self.rounds.begin_round(("v", self.pid), label="L")
        else:
            super().on_timer(tag)


def test_timed_round_2delta_threshold(once):
    """The draft's Δ-synchrony observation: wait >= 2Δ ⇒ unidirectional."""
    delta = 1.0

    def experiment():
        rows = []
        for wait_factor in (0.5, 1.0, 1.5, 2.0, 2.5):
            violations = 0
            runs = 12
            for seed in range(runs):
                procs = [_StaggeredChat(TimedRoundTransport(wait=wait_factor * delta),
                                        start_jitter=4.0)
                         for _ in range(4)]
                sim = Simulation(procs,
                                 ReliableAsynchronous(0.0, delta), seed=seed)
                sim.run(until=60.0)
                rep = check_directionality(sim.trace, range(4))
                if not rep.is_unidirectional:
                    violations += 1
            rows.append([f"{wait_factor:.1f}Δ", runs, violations,
                         "guaranteed" if wait_factor >= 2.0 else "not guaranteed"])
        return rows

    rows = once(experiment)
    report(format_table(
        ["round wait", "schedules", "unidirectionality violations", "theory"],
        rows,
        title="Q2c: timed rounds under Δ-bounded delays — the 2Δ threshold "
              "(staggered round starts, jitter 4Δ)",
    ))
    for row in rows:
        if row[3] == "guaranteed":
            assert row[2] == 0
