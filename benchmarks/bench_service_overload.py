"""Serving-layer overload curves: offered load vs goodput / p50 / p99.

Drives the admission-controlled ingress (:mod:`repro.service`) with a
closed-loop tenant fleet at offered loads from well under saturation to
~8x past it, in both arms of the robustness experiment:

- **protected** — bounded queue, token bucket, fair share, CoDel,
  brownout at the ingress; budgets, jittered escalating backoff, and
  honored backpressure at the tenants;
- **unprotected** — unbounded queue, no policies, fixed 5s timeouts,
  unbounded retries.

Offered load is swept by fleet size at a fixed 1s think time, so the
nominal demand is ``n_tenants / think_time`` against a pump service rate
of ``1 / proc_time`` (~2.9/s). *Goodput* counts only completions within
the SLA window — answering everything with rejections scores zero, which
is what rules out the degenerate "protect by refusing service" strategy.

The acceptance bars encode the graceful-degradation claim:

- at ~2x saturation the protected arm's goodput stays within 20% of its
  peak across the whole sweep, with p99 completion latency inside the
  SLA window;
- at the deepest overload the unprotected arm collapses (goodput a small
  fraction of protected, p99 a large multiple) — sustained demand past
  the pump rate plus fixed-timeout retransmission is the same metastable
  mechanism the soak harness's planted storm triggers;
- every cell is a pure function of the seed: one cell is re-measured and
  must reproduce bit-identically.

Writes ``BENCH_service.json`` at the repo root (override with ``--out``).

Runs two ways::

    python -m pytest benchmarks/bench_service_overload.py --benchmark-only
    python benchmarks/bench_service_overload.py --quick   # CI smoke
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.analysis import format_table
from repro.faults.chaos import DEFAULT_CHANNEL
from repro.service.soak import (
    build_service_system,
    protected_profile,
    unprotected_profile,
)
from repro.sim.trace import CUSTOM, TraceObserver

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

FULL_GRID = dict(tenants=(1, 2, 4, 6, 12, 24))
QUICK_GRID = dict(tenants=(2, 6, 24))

HORIZON = 300.0
THINK = 1.0
SLA = 15.0
SEED = 0

#: acceptance bars, shared by full and quick grids (the quick grid keeps
#: the 2x-saturation and deepest-overload cells, so the claim under test
#: is identical)
BARS = dict(
    goodput_vs_peak=0.8,     # protected goodput at 2x saturation / peak
    collapse_ratio=4.0,      # protected / unprotected goodput, deepest cell
    p99_blowup=2.0,          # unprotected / protected p99, deepest cell
)


class _ServiceMetrics(TraceObserver):
    """Streaming collector for the per-cell metrics."""

    def __init__(self) -> None:
        self.sent = 0
        self.latencies: list[float] = []
        self.rejected = 0
        self.abandoned = 0

    def on_event(self, ev) -> None:
        if ev.kind != CUSTOM:
            return
        tag = ev.field("event")
        if tag == "svc_sent":
            self.sent += 1
        elif tag == "svc_done":
            self.latencies.append(ev.field("latency"))
        elif tag == "svc_reject":
            self.rejected += 1
        elif tag == "svc_failed":
            self.abandoned += 1


def _percentile(xs: Sequence[float], q: float) -> Optional[float]:
    if not xs:
        return None
    ordered = sorted(xs)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def measure_cell(n_tenants: int, protected: bool,
                 seed: int = SEED) -> dict[str, Any]:
    """One (offered load, arm) cell; pure function of the arguments."""
    make = protected_profile if protected else unprotected_profile
    profile = make(think_time=THINK, start_spread=2.0)
    metrics = _ServiceMetrics()
    sim, _replicas, ingress, _tenants = build_service_system(
        profile=profile,
        n_tenants=n_tenants,
        # enough ops that no tenant exhausts its stream inside the horizon
        ops_per_tenant=int(HORIZON / THINK) + 100,
        seed=seed,
        reliable=dict(DEFAULT_CHANNEL),
        trace_retention=50_000,
        observers=[metrics],
    )
    sim.run(until=HORIZON)
    lat = metrics.latencies
    within_sla = sum(1 for l in lat if l <= SLA)
    return {
        "n_tenants": n_tenants,
        "arm": profile.name,
        "offered_nominal": n_tenants / THINK,
        "sent": metrics.sent,
        "completed": len(lat),
        "goodput": within_sla / HORIZON,
        "throughput": len(lat) / HORIZON,
        "p50": _percentile(lat, 0.50),
        "p99": _percentile(lat, 0.99),
        "rejected": metrics.rejected,
        "abandoned": metrics.abandoned,
    }


def run_service_overload(quick: bool = False,
                         out: Optional[Path] = DEFAULT_OUT) -> dict[str, Any]:
    grid = QUICK_GRID if quick else FULL_GRID
    saturation = 1.0 / protected_profile().proc_time
    curves: dict[str, list[dict[str, Any]]] = {"protected": [],
                                               "unprotected": []}
    for n in grid["tenants"]:
        curves["protected"].append(measure_cell(n, protected=True))
        curves["unprotected"].append(measure_cell(n, protected=False))

    # the cell nearest 2x saturation, and the deepest-overload cell
    two_x = min(
        curves["protected"],
        key=lambda c: abs(c["offered_nominal"] - 2.0 * saturation),
    )
    deepest_p = curves["protected"][-1]
    deepest_u = curves["unprotected"][-1]
    peak = max(c["goodput"] for c in curves["protected"])

    # determinism witness: re-measure one cell, must reproduce bit-exactly
    replay = measure_cell(grid["tenants"][-1], protected=True)
    assert replay == deepest_p, (
        "service overload cell is not a pure function of the seed"
    )

    results = {
        "quick": quick,
        "seed": SEED,
        "horizon": HORIZON,
        "think_time": THINK,
        "sla": SLA,
        "saturation_rate": saturation,
        "curves": curves,
        "bars": BARS,
        "headline": {
            "two_x_cell": two_x,
            "peak_goodput": peak,
            "goodput_vs_peak": two_x["goodput"] / peak if peak else 0.0,
            "deepest_protected": deepest_p,
            "deepest_unprotected": deepest_u,
            "collapse_ratio": (
                deepest_p["goodput"] / deepest_u["goodput"]
                if deepest_u["goodput"] else float("inf")
            ),
        },
        "determinism": {"cell_replayed": replay["n_tenants"],
                        "identical": True},
    }
    if out is not None:
        Path(out).write_text(json.dumps(results, indent=2) + "\n")

    assert two_x["goodput"] >= BARS["goodput_vs_peak"] * peak, (
        f"protected goodput at 2x saturation ({two_x['goodput']:.2f}/s) "
        f"fell below {BARS['goodput_vs_peak']:.0%} of peak ({peak:.2f}/s)"
    )
    assert two_x["p99"] is not None and two_x["p99"] <= SLA, (
        f"protected p99 at 2x saturation ({two_x['p99']}) outside the "
        f"{SLA}s SLA window"
    )
    assert (
        deepest_p["goodput"]
        >= BARS["collapse_ratio"] * deepest_u["goodput"]
    ), (
        f"unprotected arm did not collapse at {deepest_u['offered_nominal']}"
        f"/s offered: {deepest_u['goodput']:.2f}/s vs protected "
        f"{deepest_p['goodput']:.2f}/s"
    )
    assert (
        deepest_u["p99"] is not None
        and deepest_u["p99"] >= BARS["p99_blowup"] * deepest_p["p99"]
    ), (
        f"unprotected p99 ({deepest_u['p99']}) did not blow up vs "
        f"protected ({deepest_p['p99']})"
    )
    return results


def render(results: dict[str, Any]) -> str:
    rows = []
    for prot_cell, unprot_cell in zip(results["curves"]["protected"],
                                      results["curves"]["unprotected"]):
        for cell in (prot_cell, unprot_cell):
            rows.append([
                f"{cell['offered_nominal']:.0f}/s",
                cell["arm"],
                f"{cell['goodput']:.2f}/s",
                f"{cell['p50']:.1f}" if cell["p50"] is not None else "-",
                f"{cell['p99']:.1f}" if cell["p99"] is not None else "-",
                str(cell["rejected"]),
                str(cell["abandoned"]),
            ])
    h = results["headline"]
    table = format_table(
        ["offered", "arm", "goodput", "p50 s", "p99 s", "rejected",
         "abandoned"],
        rows,
        title=f"R8: offered load vs goodput/latency, pump rate "
              f"{results['saturation_rate']:.1f}/s, SLA {results['sla']:g}s "
              f"(seed-deterministic, one cell replayed bit-identically)",
    )
    return (
        table
        + f"\n\nheadline: protected goodput at 2x saturation = "
          f"{h['two_x_cell']['goodput']:.2f}/s "
          f"({h['goodput_vs_peak']:.0%} of peak); deepest overload "
          f"protected {h['deepest_protected']['goodput']:.2f}/s vs "
          f"unprotected {h['deepest_unprotected']['goodput']:.2f}/s "
          f"({h['collapse_ratio']:.1f}x)"
    )


def test_service_overload(once, quick):
    from _bench_util import report

    results = once(run_service_overload, quick)
    report(render(results))


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shrunken offered-load grid (CI)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    results = run_service_overload(quick=args.quick, out=args.out)
    print(render(results))
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
