"""Pipeline throughput curves: offered load vs committed throughput/latency.

Sweeps the replication core's two throughput mechanisms — the bounded
in-flight window and policy-driven batching — across both protocol stacks
(MinBFT's 2f+1 and PBFT's 3f+1) under the open-loop load harness
(:func:`repro.workloads.run_pipeline_load`): Poisson arrivals split over a
fleet of multi-outstanding clients, the streaming replication safety
checker riding fail-fast on every cell, the liveness auditor holding every
request to a post-GST deadline.

The grid is ``protocol × {no-batch, fixed-batch, adaptive-batch} ×
window × offered-rate``; each config's *saturation point* is the smallest
offered rate whose committed throughput reaches 95% of the config's
maximum. A separate **baseline** arm reproduces the pre-pipeline shipping
configuration: one outstanding request per client, no window, the fixed
0.2s batch-delay timer.

The acceptance bars encode the PR's performance claim:

- MinBFT with adaptive batching and a window >= 16 sustains **>= 3x** the
  committed throughput of the baseline arm at saturation;
- adaptive batching at saturation beats the fixed-delay timer on the same
  window (the cap tracks the arrival rate instead of waiting out a fixed
  delay);
- every cell completes its full request count with zero failures and
  clean safety/liveness verdicts;
- every cell is a pure function of the seed: one cell is re-measured and
  its dispatch-order witness (``order_hash``) must reproduce bit-exactly.

Writes ``BENCH_pipeline.json`` at the repo root (override with ``--out``).

Runs two ways::

    python -m pytest benchmarks/bench_pipeline.py --benchmark-only
    python benchmarks/bench_pipeline.py --quick   # CI smoke
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.analysis import format_table
from repro.workloads import run_pipeline_load

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

SEED = 0
BATCHINGS: tuple[Any, ...] = (False, "fixed", "adaptive")

FULL_GRID = dict(
    windows=(4, 16, 64),
    rates=(5.0, 10.0, 20.0, 40.0, 80.0),
    n_requests=300,
)
QUICK_GRID = dict(
    windows=(16,),
    rates=(10.0, 40.0),
    n_requests=150,
)

#: acceptance bars, shared by full and quick grids (the quick grid keeps
#: the window-16 adaptive arm and the baseline, so the claim under test
#: is identical)
BARS = dict(
    speedup_vs_baseline=3.0,   # MinBFT adaptive w>=16 vs one-outstanding
    adaptive_vs_fixed=1.0,     # adaptive >= fixed-delay at saturation
)


def _batching_name(batching: Any) -> str:
    return "none" if batching is False else str(batching)


def measure_cell(
    protocol: str,
    batching: Any,
    window: int,
    rate: float,
    n_requests: int,
    max_outstanding: int = 8,
    seed: int = SEED,
) -> dict[str, Any]:
    """One grid cell; a pure function of the arguments."""
    r = run_pipeline_load(
        protocol=protocol,
        n_requests=n_requests,
        rate=rate,
        seed=seed,
        window_size=window,
        batching=batching,
        max_outstanding=max_outstanding,
        checkpoint_interval=8,
    )
    assert r.safety_ok, f"{protocol} safety violations: {r.violations[:3]}"
    assert r.liveness_ok, f"{protocol} liveness violations: {r.violations[:3]}"
    assert r.completed == n_requests and r.failed == 0, (
        f"{protocol} rate={rate}: {r.completed}/{n_requests} completed, "
        f"{r.failed} failed"
    )
    return {
        "protocol": protocol,
        "batching": _batching_name(batching),
        "window": window,
        "offered_rate": rate,
        "max_outstanding": max_outstanding,
        "completed": r.completed,
        "throughput": r.throughput,
        "p50": r.p50,
        "p99": r.p99,
        "peak_backlog": r.peak_backlog,
        "peak_slot_state": r.peak_slot_state,
        "proposal_stalls": r.consensus["proposal_stalls"],
        "batches_flushed": r.consensus["batches_flushed"],
        "order_hash": r.order_hash,
    }


def _saturation(cells: list[dict[str, Any]]) -> dict[str, Any]:
    """Smallest offered rate reaching 95% of the config's peak throughput."""
    peak = max(c["throughput"] for c in cells)
    for c in sorted(cells, key=lambda c: c["offered_rate"]):
        if c["throughput"] >= 0.95 * peak:
            return {
                "rate": c["offered_rate"],
                "throughput": c["throughput"],
                "p99": c["p99"],
            }
    raise AssertionError("unreachable: the peak cell reaches its own peak")


def run_pipeline_bench(quick: bool = False,
                       out: Optional[Path] = DEFAULT_OUT) -> dict[str, Any]:
    grid = QUICK_GRID if quick else FULL_GRID
    n_req = grid["n_requests"]

    curves: list[dict[str, Any]] = []
    for protocol in ("minbft", "pbft"):
        for batching in BATCHINGS:
            for window in grid["windows"]:
                cells = [
                    measure_cell(protocol, batching, window, rate, n_req)
                    for rate in grid["rates"]
                ]
                curves.append({
                    "protocol": protocol,
                    "batching": _batching_name(batching),
                    "window": window,
                    "cells": cells,
                    "saturation": _saturation(cells),
                })

    # the pre-pipeline shipping configuration: closed-loop clients with one
    # outstanding request, no window, the fixed 0.2s batch-delay timer
    baseline_cells = [
        measure_cell("minbft", "fixed", 0, rate, n_req, max_outstanding=1)
        for rate in grid["rates"]
    ]
    baseline = {
        "protocol": "minbft",
        "batching": "fixed",
        "window": 0,
        "cells": baseline_cells,
        "saturation": _saturation(baseline_cells),
    }

    def config(protocol: str, batching: str, window: int) -> dict[str, Any]:
        return next(
            c for c in curves
            if c["protocol"] == protocol
            and c["batching"] == batching
            and c["window"] == window
        )

    headline_window = 16 if 16 in grid["windows"] else max(grid["windows"])
    minbft_adaptive = config("minbft", "adaptive", headline_window)
    minbft_fixed = config("minbft", "fixed", headline_window)
    pbft_adaptive = config("pbft", "adaptive", headline_window)
    speedup = (
        minbft_adaptive["saturation"]["throughput"]
        / baseline["saturation"]["throughput"]
    )

    # determinism witness: re-measure the headline config's deepest cell,
    # its dispatch-order hash must reproduce bit-exactly
    deepest_rate = grid["rates"][-1]
    replay = measure_cell(
        "minbft", "adaptive", headline_window, deepest_rate, n_req
    )
    original = next(
        c for c in minbft_adaptive["cells"]
        if c["offered_rate"] == deepest_rate
    )
    assert replay == original, (
        "pipeline cell is not a pure function of the seed: "
        f"{replay['order_hash']} != {original['order_hash']}"
    )

    results = {
        "quick": quick,
        "seed": SEED,
        "n_requests": n_req,
        "rates": list(grid["rates"]),
        "windows": list(grid["windows"]),
        "curves": curves,
        "baseline": baseline,
        "bars": BARS,
        "headline": {
            "window": headline_window,
            "minbft_adaptive_saturation": minbft_adaptive["saturation"],
            "minbft_fixed_saturation": minbft_fixed["saturation"],
            "pbft_adaptive_saturation": pbft_adaptive["saturation"],
            "baseline_saturation": baseline["saturation"],
            "speedup_vs_baseline": speedup,
        },
        "determinism": {
            "cell": {"protocol": "minbft", "batching": "adaptive",
                     "window": headline_window, "rate": deepest_rate},
            "identical": True,
        },
    }
    if out is not None:
        Path(out).write_text(json.dumps(results, indent=2) + "\n")

    assert speedup >= BARS["speedup_vs_baseline"], (
        f"MinBFT adaptive w{headline_window} reached "
        f"{minbft_adaptive['saturation']['throughput']:.1f}/s vs baseline "
        f"{baseline['saturation']['throughput']:.1f}/s — "
        f"{speedup:.1f}x, below the {BARS['speedup_vs_baseline']:.0f}x bar"
    )
    assert (
        minbft_adaptive["saturation"]["throughput"]
        >= BARS["adaptive_vs_fixed"] * minbft_fixed["saturation"]["throughput"]
    ), (
        f"adaptive batching saturated below the fixed-delay timer: "
        f"{minbft_adaptive['saturation']['throughput']:.1f}/s vs "
        f"{minbft_fixed['saturation']['throughput']:.1f}/s"
    )
    return results


def render(results: dict[str, Any]) -> str:
    rows = []
    for curve in [*results["curves"], results["baseline"]]:
        sat = curve["saturation"]
        label = (
            f"{curve['protocol']}/{curve['batching']}/w{curve['window']}"
            if curve is not results["baseline"]
            else "baseline (1-out/fixed/w0)"
        )
        deepest = curve["cells"][-1]
        rows.append([
            label,
            f"{sat['rate']:g}/s",
            f"{sat['throughput']:.1f}/s",
            f"{sat['p99']:.2f}",
            f"{deepest['throughput']:.1f}/s",
            f"{deepest['p99']:.2f}",
            str(deepest["proposal_stalls"]),
        ])
    h = results["headline"]
    table = format_table(
        ["config", "sat rate", "sat thr", "sat p99 s", "deep thr",
         "deep p99 s", "stalls"],
        rows,
        title=(
            f"R9: offered load vs committed throughput, "
            f"{results['n_requests']} reqs/cell, rates "
            f"{'/'.join(f'{r:g}' for r in results['rates'])}/s "
            f"(seed-deterministic, one cell replayed bit-identically)"
        ),
    )
    return (
        table
        + f"\n\nheadline: MinBFT adaptive w{h['window']} saturates at "
          f"{h['minbft_adaptive_saturation']['throughput']:.1f}/s vs "
          f"baseline {h['baseline_saturation']['throughput']:.1f}/s "
          f"({h['speedup_vs_baseline']:.1f}x, bar "
          f"{results['bars']['speedup_vs_baseline']:.0f}x); PBFT adaptive "
          f"saturates at {h['pbft_adaptive_saturation']['throughput']:.1f}/s"
    )


def test_pipeline_bench(once, quick):
    from _bench_util import report

    results = once(run_pipeline_bench, quick)
    report(render(results))


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shrunken rate/window grid (CI)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    results = run_pipeline_bench(quick=args.quick, out=args.out)
    print(render(results))
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
