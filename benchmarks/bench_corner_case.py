"""C4 — Appendix B: reliable broadcast implements unidirectionality at f = 1.

Sweeps n and adversarial schedules (silent process, cut pair, slow links)
through the two-phase construction; every run must complete all correct
processes' rounds and audit unidirectional. Also reports the RB broadcast
cost of a round — 2 broadcasts per process (phase 1 + phase 2), which the
table confirms.
"""

from __future__ import annotations

from _bench_util import report

from repro.analysis import format_table
from repro.core.directionality import check_directionality
from repro.core.rounds import RoundProcess
from repro.core.srb_oracle import SRBOracle
from repro.core.uni_from_rb_corner import CornerCaseRoundTransport
from repro.crypto import SignatureScheme
from repro.sim import SilentProcess, Simulation


class P(RoundProcess):
    def on_round_start(self):
        self.rounds.begin_round(("v", self.pid), label="r1")


def run_one(n, seed, schedule, silent=None):
    scheme = SignatureScheme(n, seed=seed)
    policies = {
        "fast": lambda s, r, k, now: 0.05,
        "cut-pair": lambda s, r, k, now: None if {s, r} == {0, 1} else 0.05,
        "slow-links": lambda s, r, k, now: 0.05 + ((s * 7 + r * 3 + k) % 10),
    }
    oracle = SRBOracle(policy=policies[schedule], seed=seed)
    procs = []
    for pid in range(n):
        if pid == silent:
            procs.append(SilentProcess())
        else:
            procs.append(P(CornerCaseRoundTransport(oracle, scheme, scheme.signer(pid))))
    sim = Simulation(procs, seed=seed)
    oracle.bind(sim)
    if silent is not None:
        sim.declare_byzantine(silent)
    sim.run(until=300.0)
    correct = [p for p in range(n) if p != silent]
    rep = check_directionality(sim.trace, correct)
    rep.assert_unidirectional()
    ends = len(sim.trace.events("round_end"))
    return [n, schedule, "yes" if silent is not None else "no",
            f"{ends}/{len(correct)}", rep.classify(),
            oracle.broadcasts]


def test_corner_case_sweep(once):
    def experiment():
        rows = []
        for n in (3, 4, 6):
            rows.append(run_one(n, seed=n, schedule="fast"))
            rows.append(run_one(n, seed=n + 10, schedule="cut-pair"))
            rows.append(run_one(n, seed=n + 20, schedule="slow-links"))
            rows.append(run_one(n, seed=n + 30, schedule="fast", silent=n - 1))
        return rows

    rows = once(experiment)
    report(format_table(
        ["n", "schedule", "faulty process", "rounds completed",
         "observed directionality", "RB broadcasts"],
        rows,
        title="C4: unidirectional round from reliable broadcast, f=1 (Appendix B)",
    ))
    for row in rows:
        done, total = row[3].split("/")
        assert done == total
