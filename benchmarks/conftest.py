"""Benchmark fixtures and the experiment-table summary hook."""

from __future__ import annotations

import pytest

from _bench_util import REPORTS


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="shrink seed grids for smoke/CI runs",
    )


@pytest.fixture
def quick(request):
    return request.config.getoption("--quick")


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations — repeated timing rounds
    would multiply runtime without changing the recorded rows.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run


def pytest_terminal_summary(terminalreporter):
    if not REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "experiment tables (EXPERIMENTS.md rows)")
    for block in REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(block)
