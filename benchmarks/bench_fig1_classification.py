"""FIG1 — regenerate Figure 1: every arrow executed and verified.

Paper artifact: the classification diagram ("A → B indicates A can
implement B"). The bench executes each arrow's construction/scenario and
prints the full evidence table; the run fails if any arrow's verification
fails, so the figure is *checked*, not asserted.
"""

from __future__ import annotations

from _bench_util import report

from repro.core.classification import render_figure, run_classification


def test_fig1_classification(once):
    result = once(run_classification, seed=0)
    report(render_figure(result))
    result.assert_ok()
