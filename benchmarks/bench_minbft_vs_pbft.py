"""Q1 — MinBFT (trusted hardware, n = 2f+1) vs PBFT (n = 3f+1).

The quantitative content of the paper's motivation: what does
non-equivocation hardware buy a replication system? Identical workloads
and networks; the series report, per f:

- replicas needed (2f+1 vs 3f+1 — the headline resilience shape),
- client-observed latency (two rounds vs three),
- protocol messages per committed request (quadratic in the smaller n),
- failover behavior on primary crash.

Absolute numbers are simulator-relative; the *shape* — MinBFT winning on
every axis, more so as f grows — is the reproducible claim.
"""

from __future__ import annotations

from _bench_util import report

from repro.analysis import format_table, summarize
from repro.consensus import (
    build_minbft_system,
    build_pbft_system,
    check_replication,
)


def run_system(kind, f, ops, seed, crash_primary=False):
    builder = build_minbft_system if kind == "MinBFT" else build_pbft_system
    sim, reps, clients = builder(
        f=f, n_clients=1, ops_per_client=ops, seed=seed,
        req_timeout=20.0, retry_timeout=60.0,
    )
    n = len(reps)
    if crash_primary:
        sim.crash_at(0, 2.0)
    sim.run(until=30000.0)
    correct = list(range(1 if crash_primary else 0, n))
    rep = check_replication(sim.trace, correct, expected_ops={n: ops})
    rep.assert_ok()
    lat = summarize(clients[0].latencies)
    return {
        "kind": kind,
        "f": f,
        "n": n,
        "lat_p50": lat.p50,
        "lat_p95": lat.p95,
        "msgs_per_req": sim.network.messages_sent / ops,
        "done_at": max(d.time for d in
                       (e for e in sim.trace.events("custom")
                        if e.field("event") == "request_done")
                       ) if False else clients[0].latencies and sim.now,
    }


def test_fault_tolerance_table(once):
    """The headline table: replicas and message rounds needed per f."""

    def experiment():
        rows = []
        for f in (1, 2, 3):
            m = run_system("MinBFT", f, ops=10, seed=f)
            p = run_system("PBFT", f, ops=10, seed=f)
            rows.append([
                f, m["n"], p["n"],
                f"{m['lat_p50']:.2f}", f"{p['lat_p50']:.2f}",
                f"{m['msgs_per_req']:.0f}", f"{p['msgs_per_req']:.0f}",
            ])
        return rows

    rows = once(experiment)
    report(format_table(
        ["f", "MinBFT n", "PBFT n", "MinBFT p50 lat", "PBFT p50 lat",
         "MinBFT msgs/req", "PBFT msgs/req"],
        rows,
        title="Q1a: MinBFT (2f+1, 2 rounds, USIG) vs PBFT (3f+1, 3 rounds) — "
              "identical asynchronous network and workload",
    ))
    for row in rows:
        f, mn, pn = row[0], row[1], row[2]
        assert mn == 2 * f + 1 and pn == 3 * f + 1
        assert float(row[3]) < float(row[4])   # fewer rounds -> lower latency
        assert int(row[5]) < int(row[6])       # fewer replicas -> fewer msgs


def test_failover_comparison(once):
    def experiment():
        rows = []
        for kind in ("MinBFT", "PBFT"):
            r = run_system(kind, f=1, ops=6, seed=9, crash_primary=True)
            rows.append([kind, r["n"], "primary crash @t=2",
                         f"{r['lat_p95']:.1f}", "recovered"])
        return rows

    rows = once(experiment)
    report(format_table(
        ["protocol", "n", "fault", "p95 latency (incl. failover)", "outcome"],
        rows,
        title="Q1b: primary-crash failover, f=1 (view change in both stacks)",
    ))


def test_apps_under_replication(once):
    """State digests agree across replicas for every app on both stacks."""

    def experiment():
        rows = []
        for kind, builder in (("MinBFT", build_minbft_system),
                              ("PBFT", build_pbft_system)):
            for app in ("counter", "kv", "bank"):
                sim, reps, clients = builder(
                    f=1, n_clients=2, ops_per_client=5, app=app, seed=3
                )
                sim.run(until=30000.0)
                n = len(reps)
                rep = check_replication(
                    sim.trace, range(n),
                    expected_ops={n: 5, n + 1: 5},
                )
                rep.assert_ok()
                digests = {r.app.digest() for r in reps}
                rows.append([kind, app, n, len(digests), "consistent"])
        return rows

    rows = once(experiment)
    report(format_table(
        ["protocol", "app", "replicas", "distinct state digests", "verdict"],
        rows,
        title="Q1c: replicated state machines (counter/kv/bank) converge",
    ))
    assert all(r[3] == 1 for r in rows)
