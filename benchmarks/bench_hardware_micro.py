"""Q3 — hardware microbenchmarks (wall-clock, pytest-benchmark timing).

Throughput of each trusted-hardware primitive's hot operation, as a
library-quality microbench: TrInc attest/check, A2M append/lookup,
enclave invoke, signature sign/verify, PEATS out/rdp, canonical
serialization. These are real timing loops (not single-shot), so the
pytest-benchmark table is the deliverable here.
"""

from __future__ import annotations

import pytest

from repro.crypto import SignatureScheme, canonical_bytes
from repro.hardware import (
    A2MAuthority,
    EnclaveAuthority,
    EnclaveProgram,
    PEATS,
    TrincAuthority,
    WILDCARD,
)


@pytest.fixture
def trinc():
    auth = TrincAuthority(1, seed=1)
    return auth, auth.trinket(0)


def test_trinc_attest(benchmark, trinc):
    auth, t = trinc
    counter = iter(range(1, 10_000_000))
    benchmark(lambda: t.attest(next(counter), "payload"))


def test_trinc_check(benchmark, trinc):
    auth, t = trinc
    a = t.attest(1, "payload")
    result = benchmark(lambda: auth.check(a, 0))
    assert result


def test_a2m_append(benchmark):
    auth = A2MAuthority(1, seed=2)
    d = auth.device(0)
    log = d.create_log()
    benchmark(lambda: d.append(log, "entry"))


def test_a2m_lookup(benchmark):
    auth = A2MAuthority(1, seed=3)
    d = auth.device(0)
    log = d.create_log()
    for i in range(100):
        d.append(log, f"entry{i}")
    stmt = benchmark(lambda: d.lookup(log, 50, nonce=7))
    assert auth.check(stmt, 0)


def test_enclave_invoke(benchmark):
    auth = EnclaveAuthority(1, seed=4)
    enclave = auth.launch(0, EnclaveProgram("bench", 0, lambda s, x: (s + 1, s)))
    benchmark(lambda: enclave.invoke("input"))


def test_signature_sign(benchmark):
    scheme = SignatureScheme(1, seed=5)
    signer = scheme.signer(0)
    benchmark(lambda: signer.sign(("domain", 1, "value")))


def test_signature_verify(benchmark):
    scheme = SignatureScheme(1, seed=6)
    sig = scheme.signer(0).sign(("domain", 1, "value"))
    result = benchmark(lambda: scheme.verify(("domain", 1, "value"), sig))
    assert result


def test_peats_out_rdp(benchmark):
    space = PEATS("bench")
    for i in range(200):
        space.execute(0, "out", ((i % 10, f"v{i}"),))

    def op():
        space.execute(0, "out", ((3, "fresh"),))
        return space.execute(0, "rdp", ((3, WILDCARD),))

    assert benchmark(op) is not None


def test_canonical_bytes_nested(benchmark):
    value = ("SRB-L1", 0, 7, ("payload", tuple(range(20)), {"k": "v"}))
    benchmark(lambda: canonical_bytes(value))
