"""R4 — crypto hot path: digest caching, proof memoization, parallel sweeps.

Two workloads, both run cached (the shipped configuration) and uncached
(``caching_disabled()``, the pre-optimization reference behavior — every
call re-serializes and re-HMACs from scratch):

- **signed-SRB burst** — an n=7, t=3 Algorithm-1 broadcast burst on a
  clean network. Algorithm 1 relays signed proofs by reference, so the
  same copier signatures get re-checked O(n·t²) times per broadcast; the
  verification cache and the L1/L2 proof memos collapse that to one HMAC
  per unique signature. Measured: wall time and :class:`CryptoStats`
  HMAC counts, with a byte-for-byte delivery-equality check between the
  cached and uncached runs.
- **chaos sweep** — ``chaos_sweep`` over srb-uni with realistic payload
  sizes, three ways: serial-uncached (the pre-optimization baseline),
  serial-cached, and ``workers=4`` parallel-cached. The parallel sweep
  must return ChaosResults bit-identical to the serial one (stats and
  all); the recorded headline speedup is baseline vs the best cached
  configuration. Parallel wall-clock is reported relative to serial so
  single-core CI boxes (where extra processes only add contention) stay
  honest — the JSON records the machine's CPU count next to it.

Acceptance bars asserted here: >= 3x HMAC reduction on the burst and
>= 2x sweep wall-clock speedup (>= 1x — "never slower" — in ``--quick``
CI mode, which uses a smaller grid).

Writes ``BENCH_hotpath.json`` at the repo root (override with ``--out``).

Runs two ways::

    python -m pytest benchmarks/bench_hotpath.py --benchmark-only
    python benchmarks/bench_hotpath.py --quick   # CI smoke, no pytest
"""

from __future__ import annotations

import json
import os
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.analysis import format_table
from repro.core.srb_from_uni import build_mp_srb_system
from repro.crypto.serialize import (
    caching_disabled,
    crypto_stats,
    reset_crypto_caches,
)
from repro.faults.chaos import ChaosResult, chaos_sweep

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

BURST = dict(n=7, t=3, n_messages=8)
HMAC_REDUCTION_BAR = 3.0  # the ISSUE's acceptance threshold for the burst

FULL_SWEEP = dict(n=9, t=4, n_messages=6, value_bytes=16384,
                  seeds=6, horizon=400.0)
QUICK_SWEEP = dict(n=7, t=3, n_messages=6, value_bytes=4096,
                   seeds=2, horizon=250.0)
FULL_SWEEP_BAR = 2.0  # the ISSUE's acceptance threshold for the sweep
QUICK_SWEEP_BAR = 1.0  # CI smoke: the cached path must never be slower
WORKERS = 4


# ---------------------------------------------------------------------------
# Burst: one broadcast burst, cached vs uncached
# ---------------------------------------------------------------------------


def run_burst(cached: bool, n: int, t: int, n_messages: int) -> dict[str, Any]:
    """One signed-SRB burst; returns wall time, crypto stats, deliveries."""
    ctx = nullcontext() if cached else caching_disabled()
    with ctx:
        reset_crypto_caches()
        t0 = time.perf_counter()
        sim, procs, _scheme = build_mp_srb_system(n=n, t=t, sender=0, seed=0)
        for i in range(n_messages):
            sim.at(1.0 + 0.5 * i,
                   lambda i=i: procs[0].broadcast(f"burst-{i}"),
                   label=f"bcast-{i}")
        sim.run(until=120.0)
        wall = time.perf_counter() - t0
        stats = crypto_stats().as_dict()
    deliveries = [
        (ev.pid, ev.fields["seq"], ev.fields["value"])
        for ev in sim.trace.events(kind="bcast_deliver")
    ]
    expected = n * n_messages
    assert len(deliveries) == expected, (
        f"burst incomplete: {len(deliveries)}/{expected} deliveries"
    )
    return {"wall_s": wall, "crypto": stats, "deliveries": deliveries}


def measure_burst() -> dict[str, Any]:
    uncached = run_burst(False, **BURST)
    cached = run_burst(True, **BURST)
    assert cached["deliveries"] == uncached["deliveries"], (
        "cached burst delivered differently from the uncached reference"
    )
    reduction = uncached["crypto"]["hmac_ops"] / cached["crypto"]["hmac_ops"]
    return {
        **BURST,
        "uncached": {"wall_s": uncached["wall_s"],
                     "crypto": uncached["crypto"]},
        "cached": {"wall_s": cached["wall_s"], "crypto": cached["crypto"]},
        "hmac_reduction": reduction,
        "wall_speedup": uncached["wall_s"] / cached["wall_s"],
        "deliveries_identical": True,
    }


# ---------------------------------------------------------------------------
# Sweep: serial-uncached vs serial-cached vs parallel-cached
# ---------------------------------------------------------------------------


def _verdict(r: ChaosResult) -> tuple:
    """Everything except per-run crypto counters (absent when uncached)."""
    stats = {k: v for k, v in r.stats.items() if k != "crypto"}
    return (r.protocol, r.seed, r.ok, tuple(r.violations), r.schedule,
            tuple(sorted(stats.items())), r.abort_index,
            tuple(r.liveness_violations))


def _full(r: ChaosResult) -> tuple:
    return (r.protocol, r.seed, r.ok, r.violations, r.schedule, r.stats,
            r.abort_index, r.liveness_violations)


def measure_sweep(cfg: dict[str, Any], workers: int = WORKERS) -> dict[str, Any]:
    kw = dict(protocols=("srb-uni",), seeds=range(cfg["seeds"]),
              horizon=cfg["horizon"], n=cfg["n"], t=cfg["t"],
              n_messages=cfg["n_messages"], value_bytes=cfg["value_bytes"])

    t0 = time.perf_counter()
    with caching_disabled():
        uncached = chaos_sweep(**kw)
    wall_uncached = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = chaos_sweep(**kw)
    wall_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = chaos_sweep(workers=workers, **kw)
    wall_parallel = time.perf_counter() - t0

    assert [_verdict(r) for r in serial] == [_verdict(r) for r in uncached], (
        "cached sweep verdicts differ from the uncached reference"
    )
    assert [_full(r) for r in parallel] == [_full(r) for r in serial], (
        f"workers={workers} sweep is not bit-identical to the serial sweep"
    )
    best_cached = min(wall_serial, wall_parallel)
    return {
        **cfg,
        "runs": len(serial),
        "workers": workers,
        "cpus": os.cpu_count(),
        "uncached_serial_s": wall_uncached,
        "cached_serial_s": wall_serial,
        "cached_parallel_s": wall_parallel,
        "speedup": wall_uncached / best_cached,
        "serial_speedup": wall_uncached / wall_serial,
        "parallel_vs_serial": wall_serial / wall_parallel,
        "verdicts_identical": True,
        "parallel_bit_identical": True,
    }


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def run_hotpath(quick: bool = False,
                out: Optional[Path] = DEFAULT_OUT) -> dict[str, Any]:
    burst = measure_burst()
    sweep_bar = QUICK_SWEEP_BAR if quick else FULL_SWEEP_BAR
    sweep = measure_sweep(QUICK_SWEEP if quick else FULL_SWEEP)
    results = {"quick": quick, "burst": burst, "sweep": sweep,
               "bars": {"hmac_reduction": HMAC_REDUCTION_BAR,
                        "sweep_speedup": sweep_bar}}
    if out is not None:
        Path(out).write_text(json.dumps(results, indent=2) + "\n")
    assert burst["hmac_reduction"] >= HMAC_REDUCTION_BAR, (
        f"burst HMAC reduction {burst['hmac_reduction']:.1f}x under the "
        f"{HMAC_REDUCTION_BAR}x bar"
    )
    assert burst["wall_speedup"] >= 1.0, (
        f"cached burst slower than uncached "
        f"({burst['wall_speedup']:.2f}x)"
    )
    assert sweep["speedup"] >= sweep_bar, (
        f"sweep speedup {sweep['speedup']:.2f}x under the {sweep_bar}x bar"
    )
    return results


def render(results: dict[str, Any]) -> str:
    b, s = results["burst"], results["sweep"]
    burst_tbl = format_table(
        ["config", "mode", "wall ms", "hmac ops", "verify hits"],
        [
            [f"n={b['n']} t={b['t']} msgs={b['n_messages']}", "uncached",
             f"{b['uncached']['wall_s'] * 1e3:.1f}",
             b["uncached"]["crypto"]["hmac_ops"],
             b["uncached"]["crypto"]["verify_hits"]],
            ["", "cached", f"{b['cached']['wall_s'] * 1e3:.1f}",
             b["cached"]["crypto"]["hmac_ops"],
             b["cached"]["crypto"]["verify_hits"]],
        ],
        title=f"R4a: signed-SRB burst — {b['hmac_reduction']:.1f}x fewer "
              f"HMACs, {b['wall_speedup']:.2f}x wall",
    )
    sweep_tbl = format_table(
        ["mode", "wall s", "speedup vs uncached"],
        [
            ["serial uncached", f"{s['uncached_serial_s']:.2f}", "1.00x"],
            ["serial cached", f"{s['cached_serial_s']:.2f}",
             f"{s['serial_speedup']:.2f}x"],
            [f"workers={s['workers']} cached",
             f"{s['cached_parallel_s']:.2f}",
             f"{s['uncached_serial_s'] / s['cached_parallel_s']:.2f}x"],
        ],
        title=f"R4b: chaos sweep ({s['runs']} runs, n={s['n']} t={s['t']} "
              f"payload={s['value_bytes']}B, {s['cpus']} cpu) — headline "
              f"{s['speedup']:.2f}x, parallel bit-identical",
    )
    return burst_tbl + "\n\n" + sweep_tbl


def test_hotpath(once, quick):
    from _bench_util import report

    results = once(run_hotpath, quick)
    report(render(results))


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep grid and a 'never slower' bar (CI)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    results = run_hotpath(quick=args.quick, out=args.out)
    print(render(results))
    print(f"\nwrote {args.out}")
    print(f"burst hmac reduction {results['burst']['hmac_reduction']:.1f}x "
          f"(bar {HMAC_REDUCTION_BAR}x); sweep speedup "
          f"{results['sweep']['speedup']:.2f}x "
          f"(bar {results['bars']['sweep_speedup']}x)")


if __name__ == "__main__":
    main()
