"""A3 — non-equivocating broadcast from unidirectional rounds, n ≥ f+1.

Series: (a) honest sender across n, down to the striking n = f+1 = 2
configuration; (b) an equivocating sender over unidirectional-by-timing
rounds — agreement up to ⊥ must hold with at most one non-⊥ value ever
committed; (c) the same attack over zero-directional rounds, where the
guarantee is expected to FAIL — the separation in protocol form.
"""

from __future__ import annotations

from _bench_util import report

from repro.analysis import format_table
from repro.broadcast import BOT, NonEquivocatingBroadcast, check_nonequivocating_broadcast
from repro.broadcast.nonequivocating import _neb_domain
from repro.core.rounds import (
    MessagePassingRoundTransport,
    SharedMemoryRoundTransport,
    TimedRoundTransport,
)
from repro.core.uni_from_sm import build_objects_for
from repro.crypto import SignatureScheme
from repro.sim import ReliableAsynchronous, ScriptedAdversary, Simulation
from repro.sim.adversary import LinkRule


def honest_run(n, seed):
    scheme = SignatureScheme(n, seed=seed)
    procs = [
        NonEquivocatingBroadcast(SharedMemoryRoundTransport(), 0, scheme,
                                 scheme.signer(p))
        for p in range(n)
    ]
    sim = Simulation(procs, ReliableAsynchronous(0.01, 0.8), seed=seed)
    for obj in build_objects_for("append-log", n):
        sim.memory.register(obj)
    sim.at(0.2, lambda: procs[0].broadcast("v"))
    sim.run(until=400.0)
    rep = check_nonequivocating_broadcast(sim.trace, 0, "v", range(n), True)
    rep.assert_ok()
    return [n, n - 1, "honest", len(rep.commits), 0, "ok"]


class EquivNEB(NonEquivocatingBroadcast):
    """Equivocates both the value AND its own echo, per destination group."""

    def on_round_message(self, label, src, payload):
        pass  # fully Byzantine: no honest echo behavior

    def on_round_complete(self, label):
        pass

    def value_for(self, dst):
        return "A" if dst <= 2 else "B"

    def equivocate(self):
        for dst in range(self.ctx.n):
            v = self.value_for(dst)
            sig = self.signer.sign(_neb_domain(self.sender, v))
            # the sender's VAL…
            self.ctx.send(dst, ("__round__", ("__post__",), ("NEB-VAL", v, sig)))
            # …and a matching round echo, so each group's quorum can fill
            # without ever hearing the other group
            self.ctx.send(
                dst,
                ("__round__", NonEquivocatingBroadcast.ROUND_LABEL,
                 ("NEB-VAL", v, sig)),
            )


def equivocation_run(transport_kind, seed, n=4, f=2):
    scheme = SignatureScheme(n, seed=seed)
    signers = [scheme.signer(p) for p in range(n)]

    def transport():
        if transport_kind == "uni (timed 2Δ)":
            return TimedRoundTransport(wait=2.0)
        return MessagePassingRoundTransport(f=f)

    procs = [
        (EquivNEB if p == 0 else NonEquivocatingBroadcast)(
            transport(), 0, scheme, signers[p]
        )
        for p in range(n)
    ]
    if transport_kind == "uni (timed 2Δ)":
        adversary = ReliableAsynchronous(0.0, 1.0)
    else:
        # zero-directional regime: delay the echoes between the two groups
        # until after everyone committed (a fair schedule under asynchrony —
        # every message IS delivered, just after the decisions)
        adversary = (
            ScriptedAdversary(base_delay=0.05)
            .add_rule(LinkRule([1, 2], [3], 60.0))
            .add_rule(LinkRule([3], [1, 2], 60.0))
        )
    sim = Simulation(procs, adversary, seed=seed)
    sim.declare_byzantine(0)
    sim.at(0.2, lambda: procs[0].equivocate())
    sim.run(until=200.0)
    rep = check_nonequivocating_broadcast(sim.trace, 0, None, [1, 2, 3], False)
    non_bot = []
    for v in rep.commits.values():
        if v is not BOT and not any(v == w for w in non_bot):
            non_bot.append(v)
    verdict = "agreement holds" if not rep.agreement_violations else "VIOLATED"
    return [4, 1, f"equivocating over {transport_kind}", len(rep.commits),
            len(non_bot), verdict]


def test_neb(once):
    def experiment():
        rows = [honest_run(n, seed=n) for n in (2, 3, 5)]
        rows.append(equivocation_run("uni (timed 2Δ)", seed=31))
        rows.append(equivocation_run("zero-directional (n-f wait)", seed=32))
        return rows

    rows = once(experiment)
    report(format_table(
        ["n", "f", "sender / transport", "commits", "distinct non-⊥ values",
         "verdict"],
        rows,
        title="A3: non-equivocating broadcast — unidirectionality is exactly "
              "what the agreement guarantee needs",
    ))
    # honest + uni rows safe; the zero-directional row is the demonstration
    assert rows[-2][5] == "agreement holds"
    assert rows[-1][5] == "VIOLATED"
