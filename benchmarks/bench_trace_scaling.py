"""R2 — trace scaling: indexed store vs the pre-refactor linear scan.

Synthesizes traces where an SRB broadcast stream (the events a checker
actually wants) is buried in simulation noise — the realistic shape of a
chaos run, where retransmissions, timers, and channel chatter outnumber
protocol events by orders of magnitude. Three measurements per size:

- **record throughput** — events/s into the indexed :class:`TraceStore`
  (index maintenance is on the simulation hot path);
- **batch checker time** — the same :class:`SRBStreamChecker` audit fed by
  the index-backed ``events()`` queries vs by a faithful reimplementation
  of the pre-refactor store (one list, every query scans everything);
- **streaming** — recording with a live fail-fast checker attached, i.e.
  the cost of auditing *during* the run instead of after it.

The acceptance bar asserted here: >= 5x batch-checker speedup at 100k
events (>= 3x in ``--quick`` mode, which uses smaller traces for CI).

Runs two ways::

    python -m pytest benchmarks/bench_trace_scaling.py --benchmark-only
    python benchmarks/bench_trace_scaling.py --quick   # CI smoke, no pytest
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Optional, Sequence

from repro.analysis import format_table
from repro.core.srb import SRBStreamChecker
from repro.sim.trace import _LOCAL_VIEW_KINDS, TraceEvent, TraceStore

RECEIVERS = (1, 2, 3, 4)
# Few protocol events in a lot of noise: the audit over collected state is
# identical in both modes, so the measured difference is where the ISSUE
# aimed — finding the relevant events (index walk vs full-trace scan).
N_MSGS = 20
N_PIDS = 8
FULL_SIZES = (10_000, 30_000, 100_000)
QUICK_SIZES = (5_000, 30_000)
FULL_SPEEDUP_BAR = 5.0  # the ISSUE's acceptance threshold at 100k events
QUICK_SPEEDUP_BAR = 3.0

_NOISE_KINDS = ("send", "deliver", "timer_set", "timer_fire", "custom")


class LinearScanTrace:
    """Faithful stand-in for the pre-refactor store: one append-only list;
    ``events()`` and ``local_view()`` scan the full trace every call."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(self, t: float, kind: str, pid: int, **fields: Any) -> None:
        self._events.append(
            TraceEvent(index=len(self._events), time=t, kind=kind, pid=pid,
                       fields=fields)
        )

    def events(self, kind=None, pid=None, predicate=None) -> list[TraceEvent]:
        return [
            ev for ev in self._events
            if (kind is None or ev.kind == kind)
            and (pid is None or ev.pid == pid)
            and (predicate is None or predicate(ev))
        ]

    def local_view(self, pid: int) -> tuple:
        return tuple(
            ev.view_key() for ev in self._events
            if ev.pid == pid and ev.kind in _LOCAL_VIEW_KINDS
        )


def make_events(n_events: int, seed: int = 0) -> list[tuple]:
    """A broadcast stream (in delivery order) interleaved with noise."""
    rng = random.Random(seed)
    proto: list[tuple] = []
    for k in range(1, N_MSGS + 1):
        proto.append(("bcast", 0, {"seq": k, "value": f"m{k}"}))
        for p in RECEIVERS:
            proto.append(
                ("bcast_deliver", p, {"sender": 0, "seq": k, "value": f"m{k}"})
            )
    if len(proto) > n_events:
        raise ValueError(f"n_events={n_events} too small for {len(proto)} "
                         "protocol events")
    events = []
    qi = 0
    for i in range(n_events):
        left = len(proto) - qi
        remaining = n_events - i
        if left and (left >= remaining or rng.random() < left / remaining):
            kind, pid, fields = proto[qi]
            qi += 1
        else:
            kind = rng.choice(_NOISE_KINDS)
            pid = rng.randrange(N_PIDS)
            fields = {"tag": rng.randrange(16)}
        events.append((float(i), kind, pid, fields))
    return events


def _feed(store, events) -> float:
    t0 = time.perf_counter()
    for t, kind, pid, fields in events:
        store.record(t, kind, pid, **fields)
    return time.perf_counter() - t0


def _best_of(fn: Callable[[], Any], repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _check(trace) -> None:
    # the batch audit as chaos runs it: index-backed on TraceStore, full
    # scans on the linear baseline — the checker core is identical
    report = SRBStreamChecker(0, RECEIVERS).consume(trace).finish()
    assert report.ok, report.all_violations()[:3]


def _views(trace) -> None:
    for p in range(N_PIDS):
        trace.local_view(p)


def measure(n_events: int, seed: int = 0) -> dict[str, Any]:
    events = make_events(n_events, seed=seed)

    indexed = TraceStore()
    record_s = _feed(indexed, events)
    linear = LinearScanTrace()
    _feed(linear, events)

    check_indexed = _best_of(lambda: _check(indexed))
    check_linear = _best_of(lambda: _check(linear))
    views_indexed = _best_of(lambda: _views(indexed))
    views_linear = _best_of(lambda: _views(linear))

    streamed = TraceStore()
    streamed.subscribe(SRBStreamChecker(0, RECEIVERS, fail_fast=True))
    stream_s = _feed(streamed, events)

    return {
        "events": n_events,
        "record_kevs": n_events / record_s / 1e3,
        "check_indexed_ms": check_indexed * 1e3,
        "check_linear_ms": check_linear * 1e3,
        "check_speedup": check_linear / check_indexed,
        "views_indexed_ms": views_indexed * 1e3,
        "views_linear_ms": views_linear * 1e3,
        "stream_kevs": n_events / stream_s / 1e3,
    }


def run_scaling(sizes: Sequence[int], speedup_bar: float) -> list[dict]:
    rows = [measure(n) for n in sizes]
    top = rows[-1]
    assert top["check_speedup"] >= speedup_bar, (
        f"indexed batch checker only {top['check_speedup']:.1f}x faster than "
        f"the linear-scan baseline at {top['events']} events "
        f"(bar: {speedup_bar}x)"
    )
    return rows


def render(rows: list[dict], title: str) -> str:
    return format_table(
        ["events", "record kev/s", "batch idx ms", "batch linear ms",
         "speedup", "views idx ms", "views linear ms", "stream kev/s"],
        [[r["events"], f"{r['record_kevs']:.0f}",
          f"{r['check_indexed_ms']:.2f}", f"{r['check_linear_ms']:.2f}",
          f"{r['check_speedup']:.1f}x", f"{r['views_indexed_ms']:.2f}",
          f"{r['views_linear_ms']:.2f}", f"{r['stream_kevs']:.0f}"]
         for r in rows],
        title=title,
    )


def test_trace_scaling(once):
    from _bench_util import report

    rows = once(run_scaling, FULL_SIZES, FULL_SPEEDUP_BAR)
    report(render(
        rows,
        title="R2: trace store scaling — indexed queries vs pre-refactor "
              f"linear scan ({N_MSGS} broadcasts to {len(RECEIVERS)} "
              "receivers buried in noise)",
    ))


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller traces and a lower speedup bar (CI)")
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    bar = QUICK_SPEEDUP_BAR if args.quick else FULL_SPEEDUP_BAR
    rows = run_scaling(sizes, bar)
    print(render(rows, title="trace store scaling"
                             + (" (quick)" if args.quick else "")))
    print(f"speedup bar {bar}x met at {rows[-1]['events']} events: "
          f"{rows[-1]['check_speedup']:.1f}x")


if __name__ == "__main__":
    main()
