"""A5 — strong validity agreement separates synchrony from unidirectionality.

The top edge of Figure 1, both halves executed:

1. **positive** — Dolev–Strong-per-input under lock-step rounds solves
   strong validity agreement at n ≥ 2f+1 (sweep over n, f, Byzantine
   minorities);
2. **negative** — the three-world demonstration at n = 3f: a candidate
   over unidirectional rounds is forced into a split while honoring every
   round obligation.
"""

from __future__ import annotations

from _bench_util import report

from repro.agreement import (
    STRONG,
    build_strong_agreement_system,
    check_agreement,
    run_strong_validity_impossibility,
)
from repro.analysis import format_table


def sync_run(n, f, byz_count, seed):
    inputs = ["v"] * (n - byz_count) + [f"x{i}" for i in range(byz_count)]
    sim, procs = build_strong_agreement_system(n, f, inputs, seed=seed)
    for b in range(n - byz_count, n):
        sim.declare_byzantine(b)
        sim.crash(b)
    sim.run(until=120.0)
    correct = list(range(n - byz_count))
    rep = check_agreement(sim.trace, STRONG, dict(enumerate(inputs)),
                          correct, all_correct=byz_count == 0)
    rep.assert_ok()
    agreed = next(iter(rep.commits.values()))
    return [n, f, byz_count, len(rep.commits), repr(agreed), "ok"]


def test_strong_validity_under_synchrony(once):
    def experiment():
        rows = []
        for n, f in [(3, 1), (5, 2), (7, 3)]:
            rows.append(sync_run(n, f, 0, seed=n))
            rows.append(sync_run(n, f, f, seed=n + 50))
        return rows

    rows = once(experiment)
    report(format_table(
        ["n", "f", "byzantine", "commits", "agreed value", "strong validity"],
        rows,
        title="A5a: strong validity agreement under lock-step synchrony, "
              "n = 2f+1 (n parallel Dolev–Strong instances + majority)",
    ))
    assert all(r[4] == "'v'" for r in rows)


def test_strong_validity_impossible_over_uni(once):
    def experiment():
        rows = []
        for seed in range(4):
            out = run_strong_validity_impossibility(seed=seed)
            out.assert_holds()
            rows.append([
                seed,
                f"{out.world1.commits}",
                f"{out.world2.commits}",
                f"{out.world3.commits}",
                out.directionality3.classify(),
                "demonstrated",
            ])
        return rows

    rows = once(experiment)
    report(format_table(
        ["seed", "world-1 (forces 0)", "world-2 (forces 1)",
         "world-3 (split!)", "world-3 rounds", "impossibility"],
        rows,
        title="A5b: strong validity agreement over unidirectional rounds at "
              "n = 3f — the three-world split (draft Claim clm:unidirSBA)",
    ))
