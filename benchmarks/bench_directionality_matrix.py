"""M1 — the communication-model matrix (draft §"Relationship to Classical
Communication Models").

Runs every round transport under every compatible adversary and reports
the strongest directionality level consistent with the observed traces —
the draft's placement of classical models into the
bidirectional/unidirectional/zero-directional hierarchy, regenerated:

- lock-step synchrony → bidirectional;
- shared memory (all four object families) under full asynchrony →
  unidirectional;
- timed rounds at ≥ 2Δ → unidirectional, below → can drop to zero;
- plain asynchronous n-f rounds → zero-directional (violations found).
"""

from __future__ import annotations

from _bench_util import report

from repro.analysis import format_table
from repro.core.directionality import check_directionality
from repro.core.rounds import (
    LockStepRoundTransport,
    MessagePassingRoundTransport,
    RoundProcess,
    TimedRoundTransport,
)
from repro.core.uni_from_sm import ALL_SM_TRANSPORTS, build_objects_for
from repro.sim import (
    LockStepSynchronous,
    ReliableAsynchronous,
    ScriptedAdversary,
    Simulation,
)


class Chat(RoundProcess):
    def on_round_start(self):
        # lock-step transports assign their own (boundary) labels
        label = None if isinstance(self.rounds, LockStepRoundTransport) else "L"
        self.rounds.begin_round(("hi", self.pid), label=label)


class StaggeredChat(RoundProcess):
    def on_round_start(self):
        self.ctx.set_timer(self.ctx.rng.uniform(0, 4.0), "go")

    def on_timer(self, tag):
        if tag == "go":
            self.rounds.begin_round(("hi", self.pid), label="L")
        else:
            super().on_timer(tag)


def observe(make_transport, adversary_factory, n=4, seeds=range(6),
            staggered=False, sm_objects=None, horizon=200.0):
    """Worst (weakest) classification across the seeds."""
    worst = "bidirectional"
    order = {"bidirectional": 0, "unidirectional": 1, "zero-directional": 2}
    cls = StaggeredChat if staggered else Chat
    for seed in seeds:
        procs = [cls(make_transport()) for _ in range(n)]
        sim = Simulation(procs, adversary_factory(), seed=seed)
        if sm_objects is not None:
            for obj in build_objects_for(sm_objects, n):
                sim.memory.register(obj)
        sim.run(until=horizon)
        rep = check_directionality(sim.trace, range(n))
        got = rep.classify()
        if order[got] > order[worst]:
            worst = got
    return worst


def test_directionality_matrix(once):
    def experiment():
        split = lambda: (
            ScriptedAdversary(base_delay=0.05)
            .withhold([0, 1], [2, 3]).withhold([2, 3], [0, 1])
        )
        rows = []
        rows.append([
            "lock-step rounds", "synchronous (Δ=1, period=2)",
            observe(lambda: LockStepRoundTransport(period=2.0),
                    lambda: LockStepSynchronous(delta=1.0)),
            "bidirectional",
        ])
        for name in sorted(ALL_SM_TRANSPORTS):
            rows.append([
                f"shared memory ({name})", "asynchronous",
                observe(lambda name=name: ALL_SM_TRANSPORTS[name](),
                        lambda: ReliableAsynchronous(0.0, 3.0),
                        sm_objects=name, seeds=range(3), horizon=400.0),
                "≥ unidirectional",
            ])
        rows.append([
            "timed rounds, wait=2Δ", "Δ-bounded, staggered starts",
            observe(lambda: TimedRoundTransport(wait=2.0),
                    lambda: ReliableAsynchronous(0.0, 1.0), staggered=True),
            "≥ unidirectional",
        ])
        rows.append([
            "timed rounds, wait=0.5Δ", "Δ-bounded, staggered starts",
            observe(lambda: TimedRoundTransport(wait=0.5),
                    lambda: ReliableAsynchronous(0.0, 1.0), staggered=True,
                    seeds=range(12)),
            "can reach zero-directional",
        ])
        rows.append([
            "async n-f rounds", "asynchronous + fair split schedule",
            observe(lambda: MessagePassingRoundTransport(f=2),
                    split),
            "zero-directional",
        ])
        return rows

    rows = once(experiment)
    report(format_table(
        ["round implementation", "network model", "weakest observed", "theory"],
        rows,
        title="M1: the communication-model matrix — classical models placed "
              "in the bi/uni/zero hierarchy by observation",
    ))
    by_name = {r[0]: r[2] for r in rows}
    assert by_name["lock-step rounds"] == "bidirectional"
    for name in ALL_SM_TRANSPORTS:
        assert by_name[f"shared memory ({name})"] != "zero-directional"
    assert by_name["timed rounds, wait=2Δ"] != "zero-directional"
    assert by_name["async n-f rounds"] == "zero-directional"
