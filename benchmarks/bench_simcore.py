"""R7 — simulation-core speed: timer wheel, recycled events, keyed heap.

Measures the rewritten event loop (:mod:`repro.sim.scheduler`) against the
retained pre-refactor loop (:mod:`repro.sim._reference` — single
Event-object heap, dataclass tuple-building comparators, ``step`` via
``heap.remove`` + ``heapify``) on 10^5- and 10^6-event grids. Every
profile also records a dispatch-order witness: the two implementations
must produce the byte-identical event sequence for the same seed, or the
numbers are meaningless.

Four profiles, in increasing order of structural advantage:

- **wheel-deep** — a standing population of pending timers with one
  re-arm per fire: pop-dominated. The pre-refactor loop pays ~2·log2(n)
  Python comparator calls per pop; the new loop pays C tuple comparisons
  against a near-horizon heap. Honest constant-factor win (~2-3x).
- **wheel-churn** — the retransmission pattern (arm k, cancel k-1 before
  expiry): cancelled timers evaporate in wheel buckets instead of riding
  the heap as tombstones through compaction heapifies (~1.5-2x).
- **step-storm** — the *headline* timer-heavy profile and where the
  acceptance bar is asserted: controlled-schedule dispatch of a pending
  timer set, the regime bounded model checking lives in. The pre-refactor
  ``step`` scans and re-heapifies the whole heap per event — quadratic in
  the pending set — while the rewrite marks-and-skips in O(1). The
  reference is measured at a feasibility cap (its throughput only *drops*
  as the grid grows, so comparing the new loop's full-grid throughput
  against the reference's capped throughput understates the true ratio;
  the JSON marks this ``conservative``).
- **big-run** — end-to-end `one_big_run` over the full stack (SRB
  protocol, crypto, trace): production serial vs. production sharded vs.
  pre-refactor serial, asserting the three-way ``order_hash`` equality
  the acceptance criteria require (same seed => same dispatch sequence
  hash, serial and sharded). Protocol work dominates here, so the
  recorded speedup is modest and honest.

Baseline fidelity: the reference loop allocates events with the
*pre-refactor* dataclass comparator (two tuples per comparison) — see
``_PreRefactorEvent``. Letting the baseline borrow this PR's hand-written
``Event.__lt__`` would silently credit it with part of the rewrite.

Writes ``BENCH_simcore.json`` at the repo root (override with ``--out``).

Runs two ways::

    python -m pytest benchmarks/bench_simcore.py --benchmark-only
    python benchmarks/bench_simcore.py --quick   # CI smoke, no pytest
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.analysis import format_table
from repro.faults.chaos import one_big_run
from repro.sim._reference import HeapOnlyScheduler
from repro.sim.events import TimerFire
from repro.sim.scheduler import Scheduler

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_simcore.json"

#: events whose dispatch order is hashed for the cross-implementation
#: witness — capped so 10^6-cell grids don't double their runtime logging
ORDER_CHECK_EVENTS = 100_000

FULL_GRID = dict(
    wheel_events=(100_000, 1_000_000),
    wheel_standing=200_000,
    storm_events=(100_000, 1_000_000),
    storm_ref_cap=8_000,
    big_ops=120,
    big_shards=6,
    big_workers=4,
    reps=2,
)
QUICK_GRID = dict(
    wheel_events=(20_000,),
    wheel_standing=20_000,
    storm_events=(100_000,),
    storm_ref_cap=2_000,
    big_ops=40,
    big_shards=4,
    big_workers=2,
    reps=2,
)

#: acceptance bars — the ISSUE's >=5x (10x stretch) is asserted on the
#: step-storm profile, the timer-heavy regime where the refactor's win is
#: asymptotic rather than constant-factor; the wheel profiles get honest
#: constant-factor floors
FULL_BARS = {"step_storm": 5.0, "wheel_deep": 1.5, "wheel_churn": 1.1}
QUICK_BARS = {"step_storm": 2.0, "wheel_deep": 1.0, "wheel_churn": 0.9}

_PAYLOAD = TimerFire(pid=0, tag="bench", timer_id=0)


# ---------------------------------------------------------------------------
# Run-mode profiles: wheel-deep / wheel-churn
# ---------------------------------------------------------------------------


def _drive_wheel(sched_cls, n_events: int, standing: int, arms: int,
                 cancels: int, seed: int,
                 log: Optional[list] = None) -> tuple[Any, float]:
    """Timer-churn driver: every fire re-arms ``arms`` timers and
    immediately cancels ``cancels`` of them (the retransmission pattern:
    most timers never fire). ``standing`` pending timers are armed before
    the clock starts. The driver is deliberately thin — precomputed
    delays, no logging in timed runs — so the measurement is the
    scheduler, not the harness."""
    s = sched_cls()
    rng = random.Random(seed)
    delays = [rng.uniform(50.0, 500.0) for _ in range(1 << 16)]
    mask = (1 << 16) - 1
    sched = s.schedule
    cancel = s.cancel
    keep = arms - cancels
    state = [0]  # delay cursor (closure-mutable)

    if log is None:
        def dispatch(ev):
            i = state[0]
            for k in range(arms):
                e = sched(delays[(i + k) & mask], _PAYLOAD)
                if k >= keep:
                    cancel(e)
            state[0] = i + arms
    else:
        append = log.append

        def dispatch(ev):
            append(ev.seq)
            i = state[0]
            for k in range(arms):
                e = sched(delays[(i + k) & mask], _PAYLOAD)
                if k >= keep:
                    cancel(e)
            state[0] = i + arms

    s.dispatch = dispatch
    for i in range(standing):
        sched(delays[i & mask], _PAYLOAD)
    state[0] = standing
    t0 = time.perf_counter()
    stats = s.run(max_events=n_events)
    wall = time.perf_counter() - t0
    assert stats.events_processed == n_events, (
        f"wheel driver starved: {stats.events_processed}/{n_events}"
    )
    return stats, wall


def measure_wheel(name: str, arms: int, cancels: int, grid: dict,
                  seed: int = 7) -> dict[str, Any]:
    standing = grid["wheel_standing"]
    reps = grid["reps"]
    cells = []
    for n in grid["wheel_events"]:
        r = 1 if n >= 1_000_000 else reps
        new_wall = min(
            _drive_wheel(Scheduler, n, standing, arms, cancels, seed)[1]
            for _ in range(r)
        )
        ref_wall = min(
            _drive_wheel(HeapOnlyScheduler, n, standing, arms, cancels,
                         seed)[1]
            for _ in range(r)
        )
        stats, _ = _drive_wheel(Scheduler, min(n, ORDER_CHECK_EVENTS),
                                standing, arms, cancels, seed)
        cells.append({
            "events": n,
            "standing": standing,
            "new_eps": n / new_wall,
            "ref_eps": n / ref_wall,
            "new_wall_s": new_wall,
            "ref_wall_s": ref_wall,
            "speedup": ref_wall / new_wall,
            "timer_wheel_hits": stats.timer_wheel_hits,
            "freelist_reuses": stats.freelist_reuses,
        })
    # untimed order witness: both implementations replay the same seed
    check_n = min(max(grid["wheel_events"]), ORDER_CHECK_EVENTS)
    log_new: list = []
    log_ref: list = []
    _drive_wheel(Scheduler, check_n, standing, arms, cancels, seed, log_new)
    _drive_wheel(HeapOnlyScheduler, check_n, standing, arms, cancels, seed,
                 log_ref)
    h_new = hashlib.sha256(repr(log_new).encode()).hexdigest()
    h_ref = hashlib.sha256(repr(log_ref).encode()).hexdigest()
    assert h_new == h_ref, (
        f"{name}: dispatch order diverged from the pre-refactor loop "
        f"({h_new[:16]} != {h_ref[:16]})"
    )
    return {
        "arms": arms,
        "cancels": cancels,
        "grid": cells,
        "speedup": cells[-1]["speedup"],  # the largest cell is the verdict
        "order_check": {
            "events": check_n,
            "hash": h_new,
            "identical": True,
        },
    }


# ---------------------------------------------------------------------------
# Controlled-mode profile: step-storm
# ---------------------------------------------------------------------------


def _drive_storm(sched_cls, n_events: int) -> tuple[list, float]:
    """Controlled-schedule timer storm: schedule ``n_events`` timers with
    deliberately non-monotonic times, then ``step`` them in creation
    order — a valid controlled schedule that dispatches out of heap
    order, exactly what a DPOR exploration does. Setup is untimed."""
    s = sched_cls()
    s.controlled = True
    order: list = []
    s.dispatch = lambda ev: order.append(ev.seq)
    evs = [s.schedule(float(i % 97), _PAYLOAD) for i in range(n_events)]
    t0 = time.perf_counter()
    for ev in evs:
        s.step(ev)
    wall = time.perf_counter() - t0
    return order, wall


def measure_step_storm(grid: dict) -> dict[str, Any]:
    cap = grid["storm_ref_cap"]
    ref_order, ref_wall = _drive_storm(HeapOnlyScheduler, cap)
    new_order_cap, new_wall_cap = _drive_storm(Scheduler, cap)
    assert new_order_cap == ref_order, (
        "step-storm: controlled-mode dispatch order diverged from the "
        "pre-refactor loop"
    )
    ref_eps = cap / ref_wall
    cells = []
    for n in grid["storm_events"]:
        _, new_wall = _drive_storm(Scheduler, n)
        new_eps = n / new_wall
        cells.append({
            "events": n,
            "new_eps": new_eps,
            "new_wall_s": new_wall,
            "ref_eps": ref_eps,
            "speedup": new_eps / ref_eps,
        })
    return {
        "grid": cells,
        "ref_measured_at": cap,
        "ref_wall_s": ref_wall,
        "ref_eps": ref_eps,
        # the reference is quadratic in the pending set: its true
        # throughput at the full grid sizes is far below the capped
        # measurement, so these speedups are lower bounds
        "conservative": True,
        "speedup": cells[-1]["speedup"],
        "order_check": {"events": cap, "identical": True},
    }


# ---------------------------------------------------------------------------
# End-to-end profile: one big sharded run
# ---------------------------------------------------------------------------


def measure_big_run(grid: dict, seed: int = 3) -> dict[str, Any]:
    kw = dict(seed=seed, n_ops=grid["big_ops"], rate=2.0,
              shards=grid["big_shards"])

    t0 = time.perf_counter()
    serial = one_big_run(**kw)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = one_big_run(workers=grid["big_workers"], **kw)
    sharded_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    reference = one_big_run(scheduler="reference", **kw)
    reference_s = time.perf_counter() - t0

    assert serial.ok and sharded.ok and reference.ok, (
        "big-run safety violations: "
        f"{serial.violations or sharded.violations or reference.violations}"
    )
    assert serial.order_hash == sharded.order_hash, (
        "sharded big run is not bit-identical to the serial run"
    )
    assert serial.order_hash == reference.order_hash, (
        "production big run dispatch order diverged from the "
        "pre-refactor loop"
    )
    return {
        **{k: kw[k] for k in ("seed", "n_ops", "shards")},
        "workers": grid["big_workers"],
        "cpus": os.cpu_count(),
        "events_processed": serial.stats["events_processed"],
        "timer_wheel_hits": serial.stats["timer_wheel_hits"],
        "freelist_reuses": serial.stats["freelist_reuses"],
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "reference_s": reference_s,
        "speedup_vs_reference": reference_s / serial_s,
        "sharded_vs_serial": serial_s / sharded_s,
        "order_hash": serial.order_hash,
        "order_identical_serial_sharded": True,
        "order_identical_vs_reference": True,
    }


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def run_simcore(quick: bool = False,
                out: Optional[Path] = DEFAULT_OUT) -> dict[str, Any]:
    grid = QUICK_GRID if quick else FULL_GRID
    bars = QUICK_BARS if quick else FULL_BARS
    deep = measure_wheel("wheel-deep", arms=1, cancels=0, grid=grid)
    churn = measure_wheel("wheel-churn", arms=4, cancels=3, grid=grid)
    storm = measure_step_storm(grid)
    big = measure_big_run(grid)
    results = {
        "quick": quick,
        "profiles": {
            "wheel_deep": deep,
            "wheel_churn": churn,
            "step_storm": storm,
            "big_run": big,
        },
        "bars": bars,
        "headline": {
            "profile": "step-storm",
            "events": storm["grid"][-1]["events"],
            "speedup": storm["speedup"],
            "bar": bars["step_storm"],
            "conservative": storm["conservative"],
        },
    }
    if out is not None:
        Path(out).write_text(json.dumps(results, indent=2) + "\n")
    assert storm["speedup"] >= bars["step_storm"], (
        f"step-storm speedup {storm['speedup']:.1f}x under the "
        f"{bars['step_storm']}x bar"
    )
    assert deep["speedup"] >= bars["wheel_deep"], (
        f"wheel-deep speedup {deep['speedup']:.2f}x under the "
        f"{bars['wheel_deep']}x bar"
    )
    assert churn["speedup"] >= bars["wheel_churn"], (
        f"wheel-churn speedup {churn['speedup']:.2f}x under the "
        f"{bars['wheel_churn']}x bar"
    )
    return results


def _fmt_eps(eps: float) -> str:
    return f"{eps / 1e3:,.0f}k/s" if eps < 1e6 else f"{eps / 1e6:.2f}M/s"


def render(results: dict[str, Any]) -> str:
    p = results["profiles"]
    rows = []
    for name, key in (("wheel-deep", "wheel_deep"),
                      ("wheel-churn", "wheel_churn")):
        for cell in p[key]["grid"]:
            rows.append([
                name, f"{cell['events']:,}", f"{cell['standing']:,}",
                _fmt_eps(cell["new_eps"]), _fmt_eps(cell["ref_eps"]),
                f"{cell['speedup']:.2f}x",
            ])
    for cell in p["step_storm"]["grid"]:
        rows.append([
            "step-storm", f"{cell['events']:,}", "(controlled)",
            _fmt_eps(cell["new_eps"]),
            _fmt_eps(cell["ref_eps"]) +
            f" @{p['step_storm']['ref_measured_at'] // 1000}k",
            f"{cell['speedup']:,.0f}x",
        ])
    core_tbl = format_table(
        ["profile", "events", "standing", "new", "pre-refactor", "speedup"],
        rows,
        title="R7a: scheduler core, new loop vs pre-refactor loop "
              "(order witness identical on every profile)",
    )
    b = p["big_run"]
    big_tbl = format_table(
        ["mode", "wall s", "note"],
        [
            ["production serial", f"{b['serial_s']:.2f}",
             f"{b['events_processed']:,} events, "
             f"{b['timer_wheel_hits']:,} wheel hits"],
            [f"production workers={b['workers']}", f"{b['sharded_s']:.2f}",
             f"{b['sharded_vs_serial']:.2f}x vs serial "
             f"({b['cpus']} cpu)"],
            ["pre-refactor serial", f"{b['reference_s']:.2f}",
             f"{b['speedup_vs_reference']:.2f}x end-to-end speedup"],
        ],
        title=f"R7b: one-big-run, {b['n_ops']} ops x {b['shards']} shards — "
              "order hash identical serial/sharded/pre-refactor",
    )
    h = results["headline"]
    return (core_tbl + "\n\n" + big_tbl +
            f"\n\nheadline: {h['profile']} at {h['events']:,} events — "
            f"{h['speedup']:,.0f}x (bar {h['bar']}x, conservative)")


def test_simcore(once, quick):
    from _bench_util import report

    results = once(run_simcore, quick)
    report(render(results))


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shrunken grids and relaxed bars (CI)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    results = run_simcore(quick=args.quick, out=args.out)
    print(render(results))
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
