"""R5 — bounded model checking: DPOR reduction factor and throughput.

Three reduction workloads, each enumerable naively so the reduction factor
is measured, not estimated, and the verdict sets can be compared exactly:

- **fanout micro** — 2 senders × 2 receivers: 24 naive interleavings,
  4 Mazurkiewicz classes (the textbook independent-receivers picture);
- **srb-echo-gap** — the planted checkpoint-gap fixture, naive vs DPOR,
  both convicting the same sequencing violations;
- **vwa-world5** (full mode only) — world 5 of the five-world argument at
  ``f = 2``: 40320 naive schedules collapse to 16, the largest reduction
  in the suite.

Plus the sharded sweep: ``exhaustive_sweep`` over every registered fixture
at ``workers=1`` and ``workers=4``. The fixtures are milliseconds of work,
so parallel wall-clock mostly prices pool startup — the JSON records both
honestly next to the CPU count rather than claiming a speedup.

Acceptance bar asserted here: every reduction row shows >= 5x fewer DPOR
schedules than naive with an identical violation verdict set.

Writes ``BENCH_mc.json`` at the repo root (override with ``--out``).

Runs two ways::

    python -m pytest benchmarks/bench_mc.py --benchmark-only
    python benchmarks/bench_mc.py --quick   # CI smoke, no pytest
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.agreement.worlds import _build_world, split
from repro.analysis import format_table
from repro.faults.chaos import exhaustive_sweep
from repro.mc import explore
from repro.mc.fixtures import SYSTEMS, get_system
from repro.sim.adversary import LockStepSynchronous
from repro.sim.process import Process
from repro.sim.runner import Simulation

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_mc.json"

REDUCTION_BAR = 5.0  # the ISSUE's acceptance threshold
SWEEP_WORKERS = 4


class _FanoutSender(Process):
    def __init__(self, dsts):
        super().__init__()
        self.dsts = dsts

    def on_start(self):
        for dst in self.dsts:
            self.ctx.send(dst, ("ping", None))


class _Sink(Process):
    def on_message(self, src, msg):
        self.ctx.record("custom", event="got", src=src)


def _micro_factory():
    procs = [_FanoutSender((2, 3)), _FanoutSender((2, 3)), _Sink(), _Sink()]
    return Simulation(procs, adversary=LockStepSynchronous(1.0), seed=0)


def _world5_factory():
    sets = split(4, [2, 2], ["P", "Q"])
    return _build_world(5, 2, sets, 0)[0]


def _reduction_workloads(quick: bool) -> list[dict[str, Any]]:
    echo = get_system("srb-echo-gap")
    rows = [
        {"name": "fanout-micro", "factory": _micro_factory, "check": None,
         "options": {}},
        {"name": "srb-echo-gap", "factory": echo.factory, "check": echo.check,
         "options": dict(echo.options)},
    ]
    if not quick:
        rows.append(
            {"name": "vwa-world5", "factory": _world5_factory, "check": None,
             "options": {}}
        )
    return rows


def _timed_explore(workload: dict[str, Any], dpor: bool):
    t0 = time.perf_counter()
    res = explore(
        workload["factory"], check=workload["check"], dpor=dpor,
        **workload["options"],
    )
    return res, time.perf_counter() - t0


def measure_reductions(quick: bool) -> list[dict[str, Any]]:
    rows = []
    for workload in _reduction_workloads(quick):
        naive, naive_wall = _timed_explore(workload, dpor=False)
        dpor, dpor_wall = _timed_explore(workload, dpor=True)
        verdicts_identical = (
            {v.message for v in naive.violations}
            == {v.message for v in dpor.violations}
        )
        rows.append({
            "name": workload["name"],
            "naive_schedules": naive.schedules,
            "dpor_schedules": dpor.schedules,
            "reduction": dpor.reduction_vs(naive),
            "verdicts_identical": verdicts_identical,
            "violations": len(dpor.violations),
            "naive_wall_s": naive_wall,
            "dpor_wall_s": dpor_wall,
            "naive_schedules_per_s": naive.schedules / max(naive_wall, 1e-9),
            "naive_transitions_per_s":
                naive.transitions / max(naive_wall, 1e-9),
            "complete": naive.complete and dpor.complete,
        })
    return rows


def measure_sweep() -> dict[str, Any]:
    t0 = time.perf_counter()
    serial = exhaustive_sweep(workers=1)
    wall_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = exhaustive_sweep(workers=SWEEP_WORKERS)
    wall_parallel = time.perf_counter() - t0
    identical = all(
        serial[name].schedules == parallel[name].schedules
        and {v.schedule for v in serial[name].violations}
        == {v.schedule for v in parallel[name].violations}
        for name in serial
    )
    return {
        "systems": sorted(SYSTEMS),
        "workers": SWEEP_WORKERS,
        "cpus": os.cpu_count(),
        "schedules": sum(r.schedules for r in serial.values()),
        "violations": sum(len(r.violations) for r in serial.values()),
        "workers1_s": wall_serial,
        "workers4_s": wall_parallel,
        "parallel_vs_serial": wall_serial / max(wall_parallel, 1e-9),
        "shard_results_identical": identical,
    }


def run_mc_bench(quick: bool = False,
                 out: Optional[Path] = DEFAULT_OUT) -> dict[str, Any]:
    reductions = measure_reductions(quick)
    sweep = measure_sweep()
    results = {"quick": quick, "reductions": reductions, "sweep": sweep,
               "bars": {"reduction": REDUCTION_BAR}}
    if out is not None:
        Path(out).write_text(json.dumps(results, indent=2) + "\n")
    for row in reductions:
        assert row["reduction"] >= REDUCTION_BAR, (
            f"{row['name']}: DPOR reduction {row['reduction']:.1f}x under "
            f"the {REDUCTION_BAR}x bar"
        )
        assert row["verdicts_identical"], (
            f"{row['name']}: DPOR and naive verdict sets differ"
        )
        assert row["complete"], f"{row['name']}: exploration was cut short"
    assert sweep["shard_results_identical"], (
        "parallel shard sweep disagrees with the serial sweep"
    )
    return results


def render(results: dict[str, Any]) -> str:
    rows = [
        [r["name"], r["naive_schedules"], r["dpor_schedules"],
         f"{r['reduction']:.1f}x",
         "yes" if r["verdicts_identical"] else "NO",
         f"{r['naive_schedules_per_s']:.0f}"]
        for r in results["reductions"]
    ]
    red_tbl = format_table(
        ["system", "naive", "DPOR", "reduction", "same verdicts",
         "naive sched/s"],
        rows,
        title=f"R5a: DPOR reduction (bar {results['bars']['reduction']}x)",
    )
    s = results["sweep"]
    sweep_tbl = format_table(
        ["workers", "wall s", "schedules", "violations"],
        [
            ["1", f"{s['workers1_s']:.3f}", s["schedules"], s["violations"]],
            [str(s["workers"]), f"{s['workers4_s']:.3f}", s["schedules"],
             s["violations"]],
        ],
        title=f"R5b: sharded fixture sweep ({len(s['systems'])} systems, "
              f"{s['cpus']} cpu) — shard union identical to serial",
    )
    return red_tbl + "\n\n" + sweep_tbl


def test_mc_bench(once, quick):
    from _bench_util import report

    results = once(run_mc_bench, quick)
    report(render(results))


def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="skip the 40320-schedule naive world-5 row (CI)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)
    results = run_mc_bench(quick=args.quick, out=args.out)
    print(render(results))
    print(f"\nwrote {args.out}")
    worst = min(r["reduction"] for r in results["reductions"])
    print(f"worst-case DPOR reduction {worst:.1f}x (bar {REDUCTION_BAR}x)")


if __name__ == "__main__":
    main()
