"""A2 — weak validity agreement at n ≥ 2f+1 via non-equivocation hardware.

The library's composition chain (uni ⇒ SRB ⇒ TrInc ⇒ MinBFT) realizes the
draft's claim. Series: decision latency and outcome across f, input
patterns, and primary-crash failover; the contrast row shows classic
quorum intuition failing at n = 2f (the configuration the impossibility
argument targets — our builder refuses it, so the row reports the bound).
"""

from __future__ import annotations

from _bench_util import report

from repro.agreement import WEAK, build_weak_agreement_system, check_agreement
from repro.analysis import format_table
from repro.errors import ConfigurationError


def run_one(f, inputs_kind, crash_primary, seed):
    n = 2 * f + 1
    if inputs_kind == "same":
        inputs = ["v"] * n
    else:
        inputs = [f"v{p % 3}" for p in range(n)]
    sim, procs = build_weak_agreement_system(
        f=f, inputs=inputs, seed=seed, req_timeout=15.0
    )
    if crash_primary:
        sim.crash_at(0, 0.5)
    sim.run(until=6000.0)
    correct = list(range(1 if crash_primary else 0, n))
    rep = check_agreement(
        sim.trace, WEAK, dict(enumerate(inputs)), correct,
        all_correct=not crash_primary,
    )
    rep.assert_ok()
    decide_times = [d.time for d in sim.trace.decisions()]
    return [n, f, inputs_kind, "primary" if crash_primary else "none",
            len(rep.commits), f"{max(decide_times):.1f}"]


def test_weak_agreement_sweep(once):
    def experiment():
        rows = []
        for f in (1, 2):
            rows.append(run_one(f, "same", False, seed=f))
            rows.append(run_one(f, "mixed", False, seed=f + 10))
            rows.append(run_one(f, "mixed", True, seed=f + 20))
        return rows

    rows = once(experiment)
    report(format_table(
        ["n", "f", "inputs", "crash", "commits", "last decision (virt time)"],
        rows,
        title="A2: weak validity agreement at n = 2f+1 "
              "(uni ⇒ SRB ⇒ TrInc ⇒ MinBFT composition)",
    ))


def test_weak_agreement_bound_is_tight(once):
    """n = 2f is refused by construction — the impossibility regime."""

    def experiment():
        try:
            build_weak_agreement_system(f=1, inputs=["a", "b"])
        except ConfigurationError as exc:
            return str(exc)
        return None

    message = once(experiment)
    report(
        "A2b: n = 2f configuration refused (impossibility regime): "
        + repr(message)
    )
    assert message is not None
