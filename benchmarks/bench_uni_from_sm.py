"""C1 — §3.2 Claim: every ACL shared-memory primitive gives unidirectional
rounds.

Regenerates the claim across all four hardware families and adversarial
interleavings, and quantifies the cost (linearized ops per completed
round). The directionality checker classifies each trace; the series must
read "unidirectional" (or stronger) everywhere.
"""

from __future__ import annotations

from _bench_util import report

from repro.analysis import format_table
from repro.core.directionality import check_directionality
from repro.core.rounds import RoundProcess
from repro.core.uni_from_sm import ALL_SM_TRANSPORTS, build_objects_for
from repro.sim import ReliableAsynchronous, Simulation


class Chat(RoundProcess):
    def __init__(self, transport, nrounds):
        super().__init__(transport)
        self.nrounds = nrounds

    def on_round_start(self):
        self.rounds.begin_round(("m", self.pid, 1), label=("r", 1))

    def on_round_complete(self, label):
        r = label[1]
        if r < self.nrounds:
            self.rounds.begin_round(("m", self.pid, r + 1), label=("r", r + 1))


def run_one(name, n, seed, nrounds=2):
    cls = ALL_SM_TRANSPORTS[name]
    procs = [Chat(cls(), nrounds) for _ in range(n)]
    sim = Simulation(procs, ReliableAsynchronous(0.0, 3.0), seed=seed)
    for obj in build_objects_for(name, n):
        sim.memory.register(obj)
    sim.run(until=600.0)
    rep = check_directionality(sim.trace, range(n))
    rep.assert_unidirectional()
    completed = len(sim.trace.events("round_end"))
    return {
        "hardware": name,
        "n": n,
        "pairs": rep.pairs_checked,
        "classify": rep.classify(),
        "ops_per_round": sim.memory.ops_linearized / max(completed, 1),
    }


def test_uni_from_all_sm_primitives(once):
    def experiment():
        rows = []
        for name in sorted(ALL_SM_TRANSPORTS):
            for n in (3, 5):
                for seed in (1, 2):
                    rows.append(run_one(name, n, seed))
        return rows

    rows = once(experiment)
    # aggregate per (hardware, n)
    agg = {}
    for r in rows:
        key = (r["hardware"], r["n"])
        agg.setdefault(key, []).append(r)
    table = []
    for (name, n), rs in sorted(agg.items()):
        classifications = {r["classify"] for r in rs}
        ops = sum(r["ops_per_round"] for r in rs) / len(rs)
        pairs = sum(r["pairs"] for r in rs)
        table.append([name, n, pairs, "/".join(sorted(classifications)),
                      f"{ops:.1f}"])
    report(format_table(
        ["hardware", "n", "pairs checked", "observed directionality",
         "linearized ops / round"],
        table,
        title="C1: write-then-scan rounds over each ACL shared-memory primitive",
    ))
    assert all("zero" not in row[3] for row in table)
